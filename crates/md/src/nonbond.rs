//! Short-range nonbonded interactions: Lennard-Jones + the Ewald
//! short-range Coulomb `erfc(αr)/r`, with intramolecular exclusions.
//!
//! This is the workload of the 64 "nonbond pipelines" per MDGRAPE-4A SoC
//! (direct Coulomb and van der Waals, §II). Energies in kJ/mol, forces in
//! kJ/mol/nm (the Coulomb constant is applied here, unlike the reduced
//! units of the solver crates).
//!
//! The Coulomb kernels come from a [`PairKernelTable`] — segmented table
//! lookup with polynomial interpolation in `r²`, exactly the structure of
//! the hardware's force pipelines (DESIGN.md §10). The table replaces the
//! previous A&S `erfc_fast` rational approximation: it is both faster (no
//! `exp`) and ~6 orders of magnitude more accurate.

use crate::neighbors::{CellList, VerletList};
use crate::topology::MdSystem;
use crate::units::COULOMB;
use tme_num::special::{erf, erfc, TWO_OVER_SQRT_PI};
use tme_num::table::PairKernelTable;
use tme_num::vec3::V3;

/// Energy breakdown of one short-range evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShortRangeEnergy {
    pub lj: f64,
    pub coulomb: f64,
}

/// Evaluate LJ + short-range Coulomb into `forces` (accumulated),
/// returning the energies. `table` carries the Ewald splitting (its α) as
/// tabulated kernels and must cover the cell-list cutoff; excluded pairs
/// are skipped entirely (their mesh contribution is removed separately by
/// the exclusion correction).
pub fn short_range(
    sys: &MdSystem,
    cells: &CellList,
    table: &PairKernelTable,
    forces: &mut [V3],
) -> ShortRangeEnergy {
    assert_eq!(forces.len(), sys.len());
    let mut e = ShortRangeEnergy::default();
    cells.for_each_pair(&sys.pos, |i, j, d, r2| {
        if sys.is_excluded(i, j) {
            return;
        }
        accumulate_pair(sys, i, j, d, r2, table, &mut e, forces);
    });
    e
}

/// [`short_range`] over a pre-built Verlet list (exclusions were filtered
/// at list build time, so the hot loop has no exclusion checks).
pub fn short_range_verlet(
    sys: &MdSystem,
    list: &VerletList,
    table: &PairKernelTable,
    forces: &mut [V3],
) -> ShortRangeEnergy {
    assert_eq!(forces.len(), sys.len());
    let mut e = ShortRangeEnergy::default();
    list.for_each_pair(&sys.pos, |i, j, d, r2| {
        accumulate_pair(sys, i, j, d, r2, table, &mut e, forces);
    });
    e
}

/// [`short_range_verlet`] through the exact `erfc` oracle instead of the
/// tabulated kernels — the graceful-degradation fallback when the table
/// path produces a non-finite result (DESIGN.md §11). Slower (an `exp`
/// and an `erfc` per pair) but with no table domain to violate.
pub fn short_range_verlet_exact(
    sys: &MdSystem,
    list: &VerletList,
    alpha: f64,
    forces: &mut [V3],
) -> ShortRangeEnergy {
    assert_eq!(forces.len(), sys.len());
    let mut e = ShortRangeEnergy::default();
    list.for_each_pair(&sys.pos, |i, j, d, r2| {
        let mut f_over_r = 0.0;
        let (li, lj_) = (sys.lj[i], sys.lj[j]);
        if li.epsilon > 0.0 && lj_.epsilon > 0.0 {
            let sigma = 0.5 * (li.sigma + lj_.sigma);
            let eps = (li.epsilon * lj_.epsilon).sqrt();
            let s2 = sigma * sigma / r2;
            let s6 = s2 * s2 * s2;
            let s12 = s6 * s6;
            e.lj += 4.0 * eps * (s12 - s6);
            f_over_r += 24.0 * eps * (2.0 * s12 - s6) / r2;
        }
        let qq = sys.q[i] * sys.q[j];
        if qq != 0.0 {
            let r = r2.sqrt();
            let ec = erfc(alpha * r) / r;
            let gauss = TWO_OVER_SQRT_PI * alpha * (-alpha * alpha * r2).exp();
            e.coulomb += COULOMB * qq * ec;
            f_over_r += COULOMB * qq * (ec + gauss) / r2;
        }
        forces[i][0] += f_over_r * d[0];
        forces[i][1] += f_over_r * d[1];
        forces[i][2] += f_over_r * d[2];
        forces[j][0] -= f_over_r * d[0];
        forces[j][1] -= f_over_r * d[1];
        forces[j][2] -= f_over_r * d[2];
    });
    e
}

/// One LJ + screened-Coulomb pair interaction — the shared kernel of both
/// neighbour-search paths. The Coulomb energy and radial force factor are
/// one table lookup (two Horner chains + a square root) — no `exp`/`erfc`.
#[inline]
#[allow(clippy::too_many_arguments)] // hot-path kernel; a params struct would obscure it
fn accumulate_pair(
    sys: &MdSystem,
    i: usize,
    j: usize,
    d: V3,
    r2: f64,
    table: &PairKernelTable,
    e: &mut ShortRangeEnergy,
    forces: &mut [V3],
) {
    let mut f_over_r = 0.0;
    // Lennard-Jones with Lorentz–Berthelot combination.
    let (li, lj_) = (sys.lj[i], sys.lj[j]);
    if li.epsilon > 0.0 && lj_.epsilon > 0.0 {
        let sigma = 0.5 * (li.sigma + lj_.sigma);
        let eps = (li.epsilon * lj_.epsilon).sqrt();
        let s2 = sigma * sigma / r2;
        let s6 = s2 * s2 * s2;
        let s12 = s6 * s6;
        e.lj += 4.0 * eps * (s12 - s6);
        // F = 24ε(2 s¹² − s⁶)/r² · r⃗
        f_over_r += 24.0 * eps * (2.0 * s12 - s6) / r2;
    }
    let qq = sys.q[i] * sys.q[j];
    if qq != 0.0 {
        let (ec, fc) = table.erfc_kernel_r2(r2);
        e.coulomb += COULOMB * qq * ec;
        f_over_r += COULOMB * qq * fc;
    }
    forces[i][0] += f_over_r * d[0];
    forces[i][1] += f_over_r * d[1];
    forces[i][2] += f_over_r * d[2];
    forces[j][0] -= f_over_r * d[0];
    forces[j][1] -= f_over_r * d[1];
    forces[j][2] -= f_over_r * d[2];
}

/// Remove the mesh's `erf(αr)/r` contribution for excluded intramolecular
/// pairs (they must not interact electrostatically at all).
/// Returns the energy correction; forces are accumulated.
///
/// Bonded pair distances are far inside the table range; should a
/// pathological topology stretch one past `r_max`, the pair falls back to
/// the exact `erf`.
pub fn exclusion_correction(sys: &MdSystem, table: &PairKernelTable, forces: &mut [V3]) -> f64 {
    let alpha = table.alpha();
    let mut energy = 0.0;
    for &(i, j) in &sys.exclusions {
        let d = tme_num::vec3::min_image(sys.pos[i], sys.pos[j], sys.box_l);
        let r2 = tme_num::vec3::norm_sqr(d);
        let qq = sys.q[i] * sys.q[j];
        // Long-range complement kernel: energy erf/r, radial factor
        // (erf/r − 2α/√π e^{−α²r²})/r² — tabulated, no square root.
        let (erf_r, fl) = if table.covers(r2) {
            table.erf_kernel_r2(r2)
        } else {
            let r = r2.sqrt();
            let e = erf(alpha * r) / r;
            let gauss = TWO_OVER_SQRT_PI * alpha * (-alpha * alpha * r2).exp();
            (e, (e - gauss) / r2)
        };
        energy -= COULOMB * qq * erf_r;
        // Negated: we subtract the interaction the mesh added.
        let fr = -COULOMB * qq * fl;
        forces[i][0] += fr * d[0];
        forces[i][1] += fr * d[1];
        forces[i][2] += fr * d[2];
        forces[j][0] -= fr * d[0];
        forces[j][1] -= fr * d[1];
        forces[j][2] -= fr * d[2];
    }
    energy
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // axis loops over paired arrays
mod tests {
    use super::*;
    use crate::topology::{LjParams, WaterMol};
    use crate::units::tip3p;
    use tme_num::special::erfc;

    fn pair_system(r: f64, with_lj: bool) -> MdSystem {
        let lj = if with_lj {
            LjParams {
                sigma: tip3p::SIGMA_O,
                epsilon: tip3p::EPS_O,
            }
        } else {
            LjParams::default()
        };
        let mut s = MdSystem {
            pos: vec![[2.0, 2.0, 2.0], [2.0 + r, 2.0, 2.0]],
            vel: vec![[0.0; 3]; 2],
            mass: vec![tip3p::M_O; 2],
            q: vec![1.0, -1.0],
            lj: vec![lj; 2],
            box_l: [6.0; 3],
            waters: vec![],
            exclusions: vec![],
            bonded: Default::default(),
        };
        s.finalize();
        s
    }

    fn table_for(alpha: f64, r_max: f64) -> PairKernelTable {
        PairKernelTable::new(alpha, r_max)
    }

    #[test]
    fn coulomb_pair_energy_and_force() {
        let r = 0.5;
        let sys = pair_system(r, false);
        let cells = CellList::build(&sys.pos, sys.box_l, 1.2);
        let mut forces = vec![[0.0; 3]; 2];
        let alpha = 3.0;
        let e = short_range(&sys, &cells, &table_for(alpha, 1.2), &mut forces);
        let want = -COULOMB * erfc(alpha * r) / r;
        // Tabulated kernel: ulp-level against the exact erfc.
        assert!((e.coulomb - want).abs() < 1e-9 * want.abs());
        assert_eq!(e.lj, 0.0);
        // Newton's third law.
        for a in 0..3 {
            assert!((forces[0][a] + forces[1][a]).abs() < 1e-10);
        }
        // Attraction: atom 0 pulled toward +x.
        assert!(forces[0][0] > 0.0);
    }

    #[test]
    fn lj_minimum_at_sigma_times_2_pow_sixth() {
        let rmin = tip3p::SIGMA_O * (2.0f64).powf(1.0 / 6.0);
        let mut sys = pair_system(rmin, true);
        sys.q = vec![0.0, 0.0];
        let cells = CellList::build(&sys.pos, sys.box_l, 1.2);
        let mut forces = vec![[0.0; 3]; 2];
        let e = short_range(&sys, &cells, &table_for(3.0, 1.2), &mut forces);
        assert!((e.lj + tip3p::EPS_O).abs() < 1e-10, "E_min = {}", e.lj);
        // Zero force at the minimum.
        assert!(forces[0][0].abs() < 1e-9, "{}", forces[0][0]);
    }

    #[test]
    fn lj_force_is_minus_gradient() {
        let r = 0.35;
        let mut sys = pair_system(r, true);
        sys.q = vec![0.0, 0.0];
        let cells = CellList::build(&sys.pos, sys.box_l, 1.2);
        let mut forces = vec![[0.0; 3]; 2];
        let table = table_for(3.0, 1.2);
        short_range(&sys, &cells, &table, &mut forces);
        let h = 1e-7;
        let e_at = |rr: f64| {
            let mut s2 = pair_system(rr, true);
            s2.q = vec![0.0, 0.0];
            let c = CellList::build(&s2.pos, s2.box_l, 1.2);
            let mut f = vec![[0.0; 3]; 2];
            short_range(&s2, &c, &table, &mut f).lj
        };
        let grad = (e_at(r + h) - e_at(r - h)) / (2.0 * h);
        // Force on atom 1 along +x equals −dE/dr.
        assert!(
            (forces[1][0] + grad).abs() < 1e-4 * grad.abs(),
            "{} vs {}",
            forces[1][0],
            -grad
        );
    }

    #[test]
    fn verlet_path_matches_cell_path() {
        use crate::water::water_box;
        let sys = water_box(64, 6);
        let alpha = 3.0;
        let r_cut = 0.6; // 64 waters → L ≈ 1.24 nm, half-box 0.62 nm
        let cells = CellList::build(&sys.pos, sys.box_l, r_cut);
        let table = table_for(alpha, r_cut);
        let mut f_cell = vec![[0.0; 3]; sys.len()];
        let e_cell = short_range(&sys, &cells, &table, &mut f_cell);
        let list = VerletList::build(&sys.pos, sys.box_l, r_cut, 0.2, |i, j| {
            sys.is_excluded(i, j)
        });
        let mut f_verlet = vec![[0.0; 3]; sys.len()];
        let e_verlet = short_range_verlet(&sys, &list, &table, &mut f_verlet);
        assert!((e_cell.lj - e_verlet.lj).abs() < 1e-10);
        assert!((e_cell.coulomb - e_verlet.coulomb).abs() < 1e-9);
        for (a, b) in f_cell.iter().zip(&f_verlet) {
            for c in 0..3 {
                assert!((a[c] - b[c]).abs() < 1e-9);
            }
        }
    }

    /// The exact-`erfc` oracle (the DESIGN.md §11 fallback) agrees with
    /// the tabulated hot path to table accuracy on a dense water box.
    #[test]
    fn exact_fallback_matches_table_path() {
        use crate::water::water_box;
        let sys = water_box(64, 6);
        let alpha = 3.0;
        let r_cut = 0.6;
        let list = VerletList::build(&sys.pos, sys.box_l, r_cut, 0.2, |i, j| {
            sys.is_excluded(i, j)
        });
        let table = table_for(alpha, r_cut);
        let mut f_table = vec![[0.0; 3]; sys.len()];
        let e_table = short_range_verlet(&sys, &list, &table, &mut f_table);
        let mut f_exact = vec![[0.0; 3]; sys.len()];
        let e_exact = short_range_verlet_exact(&sys, &list, alpha, &mut f_exact);
        assert!((e_table.lj - e_exact.lj).abs() < 1e-10 * e_exact.lj.abs().max(1.0));
        assert!((e_table.coulomb - e_exact.coulomb).abs() < 1e-8 * e_exact.coulomb.abs());
        let scale = f_exact
            .iter()
            .flatten()
            .fold(0.0f64, |m, c| m.max(c.abs()))
            .max(1.0);
        for (a, b) in f_table.iter().zip(&f_exact) {
            for c in 0..3 {
                assert!((a[c] - b[c]).abs() < 1e-8 * scale, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn excluded_pairs_skipped() {
        let mut sys = pair_system(0.4, true);
        sys.exclusions = vec![(0, 1)];
        sys.waters = vec![WaterMol { o: 0, h1: 1, h2: 1 }];
        sys.finalize();
        let cells = CellList::build(&sys.pos, sys.box_l, 1.2);
        let mut forces = vec![[0.0; 3]; 2];
        let e = short_range(&sys, &cells, &table_for(3.0, 1.2), &mut forces);
        assert_eq!(e, ShortRangeEnergy::default());
        assert_eq!(forces[0], [0.0; 3]);
    }

    #[test]
    fn exclusion_correction_removes_erf_part() {
        let r: f64 = 0.09572;
        let mut sys = pair_system(r, false);
        sys.q = vec![tip3p::Q_O, tip3p::Q_H];
        sys.exclusions = vec![(0, 1)];
        sys.finalize();
        let alpha = 2.5;
        let mut forces = vec![[0.0; 3]; 2];
        let e = exclusion_correction(&sys, &table_for(alpha, 1.2), &mut forces);
        let want = -COULOMB * sys.q[0] * sys.q[1] * (1.0 - erfc(alpha * r)) / r;
        // Tabulated erf kernel: ulp-level against the exact function.
        assert!((e - want).abs() < 1e-9 * want.abs());
        // Momentum conserving.
        for a in 0..3 {
            assert!((forces[0][a] + forces[1][a]).abs() < 1e-10);
        }
    }

    /// Full identity: short_range + mesh(erf) + correction should equal the
    /// bare Coulomb pair when the pair is NOT excluded — verified at the
    /// kernel level: erfc + erf = 1/r (correction only applies to excluded).
    #[test]
    fn correction_plus_erf_cancels_exactly() {
        let r: f64 = 0.2;
        let alpha = 2.0;
        let erf_part = (1.0 - erfc(alpha * r)) / r;
        let mut sys = pair_system(r, false);
        sys.q = vec![0.5, 0.5];
        sys.exclusions = vec![(0, 1)];
        sys.finalize();
        let mut f = vec![[0.0; 3]; 2];
        let e = exclusion_correction(&sys, &table_for(alpha, 1.2), &mut f);
        assert!((e + COULOMB * 0.25 * erf_part).abs() < 1e-9);
    }
}
