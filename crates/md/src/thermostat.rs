//! Temperature control for equilibration runs.
//!
//! The paper's NVE measurements start from equilibrated configurations;
//! our boxes are built on a lattice, so a short thermostatted run is the
//! equivalent preparation step. Berendsen weak coupling is the classic
//! equilibration choice (it does not sample a correct ensemble — use it
//! only to prepare, then switch the thermostat off for NVE measurements).

use crate::topology::MdSystem;

/// Berendsen weak-coupling thermostat: each application rescales all
/// velocities by `λ = sqrt(1 + (dt/τ)(T₀/T − 1))`.
#[derive(Clone, Copy, Debug)]
pub struct Berendsen {
    /// Target temperature (K).
    pub t_target: f64,
    /// Coupling time constant τ (ps); larger = gentler.
    pub tau: f64,
}

impl Berendsen {
    pub fn new(t_target: f64, tau: f64) -> Self {
        assert!(t_target > 0.0 && tau > 0.0);
        Self { t_target, tau }
    }

    /// Apply one coupling step of length `dt` (ps); returns the scaling λ.
    pub fn apply(&self, sys: &mut MdSystem, dt: f64) -> f64 {
        let t = sys.temperature();
        if t <= 0.0 {
            return 1.0;
        }
        // Clamp the correction so a cold/hot start cannot overshoot.
        let ratio = (1.0 + dt / self.tau * (self.t_target / t - 1.0)).clamp(0.64, 1.56);
        let lambda = ratio.sqrt();
        for v in &mut sys.vel {
            v[0] *= lambda;
            v[1] *= lambda;
            v[2] *= lambda;
        }
        lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::water::{thermalize, water_box};

    #[test]
    fn hot_system_is_cooled_and_cold_heated() {
        let thermo = Berendsen::new(300.0, 0.1);
        let mut hot = water_box(27, 1);
        thermalize(&mut hot, 600.0, 2);
        let t0 = hot.temperature();
        thermo.apply(&mut hot, 0.01);
        assert!(hot.temperature() < t0);

        let mut cold = water_box(27, 1);
        thermalize(&mut cold, 50.0, 2);
        let t0 = cold.temperature();
        thermo.apply(&mut cold, 0.01);
        assert!(cold.temperature() > t0);
    }

    #[test]
    fn converges_to_target_under_repeated_coupling() {
        let thermo = Berendsen::new(300.0, 0.05);
        let mut sys = water_box(64, 5);
        thermalize(&mut sys, 900.0, 6);
        for _ in 0..400 {
            thermo.apply(&mut sys, 0.001);
        }
        let t = sys.temperature();
        assert!((t - 300.0).abs() < 5.0, "T = {t}");
    }

    #[test]
    fn at_target_is_identity() {
        let thermo = Berendsen::new(300.0, 0.1);
        let mut sys = water_box(27, 9);
        thermalize(&mut sys, 300.0, 3);
        // Force the temperature to exactly 300 K first.
        let t = sys.temperature();
        let fix = (300.0f64 / t).sqrt();
        for v in &mut sys.vel {
            for c in v.iter_mut() {
                *c *= fix;
            }
        }
        let lambda = thermo.apply(&mut sys, 0.001);
        assert!((lambda - 1.0).abs() < 1e-10);
    }

    #[test]
    fn scaling_is_clamped_for_extreme_starts() {
        let thermo = Berendsen::new(300.0, 1e-6); // absurdly tight coupling
        let mut sys = water_box(27, 4);
        thermalize(&mut sys, 10_000.0, 5);
        let lambda = thermo.apply(&mut sys, 0.01);
        assert!(lambda >= 0.8 - 1e-12, "λ = {lambda}"); // sqrt(0.64)
    }
}
