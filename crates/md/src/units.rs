//! GROMACS-compatible unit system: nm, ps, u (atomic mass), e, kJ/mol.
//!
//! In these units `F/m` is directly an acceleration in nm/ps², so the
//! integrator needs no conversion factors. Temperatures in K.

/// Coulomb constant `f = 1/(4πε₀)` in kJ·mol⁻¹·nm·e⁻² (GROMACS value).
pub const COULOMB: f64 = 138.935_458;

/// Boltzmann constant in kJ·mol⁻¹·K⁻¹.
pub const KB: f64 = 8.314_462_618e-3;

/// TIP3P water model (Jorgensen 1983), GROMACS parameterisation.
pub mod tip3p {
    /// O–H bond length (nm).
    pub const R_OH: f64 = 0.095_72;
    /// H–O–H angle (degrees).
    pub const ANGLE_HOH_DEG: f64 = 104.52;
    /// H–H distance implied by the rigid geometry (nm).
    pub fn r_hh() -> f64 {
        2.0 * R_OH * (ANGLE_HOH_DEG.to_radians() / 2.0).sin()
    }
    /// Charges (e).
    pub const Q_O: f64 = -0.834;
    pub const Q_H: f64 = 0.417;
    /// Masses (u).
    pub const M_O: f64 = 15.9994;
    pub const M_H: f64 = 1.008;
    /// Oxygen Lennard-Jones σ (nm) and ε (kJ/mol); hydrogens carry no LJ.
    pub const SIGMA_O: f64 = 0.315_061;
    pub const EPS_O: f64 = 0.636_386;
    /// Molecules per nm³ at ~997 kg/m³.
    pub const NUMBER_DENSITY: f64 = 33.327;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tip3p_geometry() {
        // H–H distance ≈ 0.15139 nm for the rigid TIP3P triangle.
        let hh = tip3p::r_hh();
        assert!((hh - 0.151_39).abs() < 1e-4, "r_HH = {hh}");
    }

    #[test]
    fn tip3p_is_neutral() {
        assert!((tip3p::Q_O + 2.0 * tip3p::Q_H).abs() < 1e-12);
    }

    #[test]
    fn water_mass() {
        let m = tip3p::M_O + 2.0 * tip3p::M_H;
        assert!((m - 18.0154).abs() < 1e-3);
    }

    #[test]
    fn density_sanity() {
        // 33.327 molecules/nm³ × 18.0154 u ≈ 997 kg/m³.
        let u_per_nm3 = tip3p::NUMBER_DENSITY * (tip3p::M_O + 2.0 * tip3p::M_H);
        let kg_per_m3 = u_per_nm3 * 1.660_539e-27 / 1e-27;
        assert!((kg_per_m3 - 997.0).abs() < 5.0, "{kg_per_m3}");
    }
}
