//! Checkpoint/restart for the MD driver (DESIGN.md §11).
//!
//! [`crate::NveSim::checkpoint`] serialises the complete dynamical state —
//! including the cached force views, the r-RESPA mesh-impulse state and
//! the Verlet list whose pair order fixes the floating-point summation
//! order — through the bit-transparent codec of [`tme_num::bytes`], so a
//! restored simulation continues the trajectory **bitwise identically**.
//! This module adds the driver layer on top: the typed error a restore can
//! surface, and a run loop that drops a checkpoint every N steps so an
//! injected mid-run fault (or a real crash) costs at most N steps of
//! recompute.

use crate::nve::{EnergyRecord, NveSim};
use tme_core::TmeRecoverableError;
use tme_num::bytes::CodecError;

/// Why a checkpoint could not be restored. Both variants are answers the
/// caller can act on — fall back to an older checkpoint or restart from
/// scratch — never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream itself is malformed (truncated, bad magic,
    /// trailing garbage).
    Codec(CodecError),
    /// The stream decodes but does not belong to this simulation —
    /// `what` names the first guard that failed (atom count, topology
    /// fingerprint, solver splitting, …).
    Mismatch {
        /// Human-readable name of the mismatched guard.
        what: &'static str,
    },
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Codec(e) => write!(f, "malformed checkpoint: {e}"),
            Self::Mismatch { what } => {
                write!(
                    f,
                    "checkpoint does not match this simulation: {what} differs"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Codec(e) => Some(e),
            Self::Mismatch { .. } => None,
        }
    }
}

/// Outcome of [`run_with_checkpoints`].
#[derive(Clone, Debug, Default)]
pub struct CheckpointedRun {
    /// Energy samples (t = 0 first), as from [`NveSim::run`].
    pub records: Vec<EnergyRecord>,
    /// `(step index, serialised state)` — newest last; index 0 is the
    /// pre-run state.
    pub checkpoints: Vec<(usize, Vec<u8>)>,
    /// The numerical fault that stopped the run early, if any. The last
    /// entry of `checkpoints` is then the newest state known good.
    pub fault: Option<TmeRecoverableError>,
}

impl CheckpointedRun {
    /// The newest checkpoint `(step, bytes)`. Always present — the run
    /// loop writes one before the first step.
    pub fn latest(&self) -> Option<&(usize, Vec<u8>)> {
        self.checkpoints.last()
    }
}

/// Run `steps` steps sampling every `sample_every` (as [`NveSim::run`]),
/// writing a checkpoint before the first step and then after every
/// `checkpoint_every` steps. If a numerical fault latches mid-run, the
/// loop stops and returns the fault together with everything gathered so
/// far — the caller restarts by [`NveSim::restore`]-ing the latest
/// checkpoint (see [`CheckpointedRun::latest`]) and re-running the
/// remaining steps, which reproduces the fault-free trajectory bitwise.
pub fn run_with_checkpoints(
    sim: &mut NveSim<'_>,
    steps: usize,
    sample_every: usize,
    checkpoint_every: usize,
) -> CheckpointedRun {
    let sample_every = sample_every.max(1);
    let checkpoint_every = checkpoint_every.max(1);
    let mut out = CheckpointedRun {
        records: vec![sim.energy_record()],
        checkpoints: vec![(0, sim.checkpoint())],
        fault: None,
    };
    for s in 1..=steps {
        sim.step();
        if let Some(e) = sim.last_error() {
            out.fault = Some(e);
            return out;
        }
        if s % sample_every == 0 {
            out.records.push(sim.energy_record());
        }
        if s % checkpoint_every == 0 {
            out.checkpoints.push((s, sim.checkpoint()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CutoffOnly, SpmeBackend, SpmeParams};
    use crate::water::{thermalize, water_box};
    use tme_reference::ewald::EwaldParams;

    fn small_water() -> crate::MdSystem {
        let mut s = water_box(64, 6);
        thermalize(&mut s, 300.0, 9);
        s
    }

    fn max_bit_divergence(a: &[[f64; 3]], b: &[[f64; 3]]) -> usize {
        a.iter()
            .zip(b)
            .flat_map(|(x, y)| x.iter().zip(y))
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count()
    }

    /// The tentpole contract: kill a run mid-flight, restore the latest
    /// checkpoint into a *fresh* simulation, finish the remaining steps,
    /// and land bitwise on the uninterrupted trajectory — including
    /// across a Verlet rebuild and the mesh path (SPME exercises every
    /// checkpointed field).
    #[test]
    fn restart_from_checkpoint_is_bitwise_identical() -> Result<(), CheckpointError> {
        let sys = small_water();
        let r_cut = 0.55;
        let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
        let Ok(spme) = SpmeBackend::new(
            SpmeParams {
                n: [16; 3],
                p: 6,
                alpha,
                r_cut,
            },
            sys.box_l,
        ) else {
            return Err(CheckpointError::Mismatch {
                what: "test SPME configuration rejected",
            });
        };
        // Uninterrupted reference: 10 steps.
        let mut reference = NveSim::new(sys.clone(), &spme, 0.001, r_cut);
        reference.mesh_interval = 2; // exercise the r-RESPA impulse state
        reference.run(10, 10);
        // Checkpointed run "crashes" after step 6; restart from step 5.
        let mut crashed = NveSim::new(sys.clone(), &spme, 0.001, r_cut);
        crashed.mesh_interval = 2;
        let run = run_with_checkpoints(&mut crashed, 6, 10, 5);
        assert!(run.fault.is_none());
        let (at, bytes) = match run.latest() {
            Some((at, bytes)) => (*at, bytes.clone()),
            None => {
                return Err(CheckpointError::Mismatch {
                    what: "no checkpoint",
                })
            }
        };
        assert_eq!(at, 5);
        let mut restarted = NveSim::new(sys, &spme, 0.001, r_cut);
        restarted.mesh_interval = 2;
        restarted.restore(&bytes)?;
        assert_eq!(restarted.time().to_bits(), (0.005f64).to_bits());
        for _ in at..10 {
            restarted.step();
        }
        assert!(restarted.last_error().is_none());
        assert_eq!(
            max_bit_divergence(&reference.system.pos, &restarted.system.pos),
            0
        );
        assert_eq!(
            max_bit_divergence(&reference.system.vel, &restarted.system.vel),
            0
        );
        assert_eq!(
            max_bit_divergence(reference.forces(), restarted.forces()),
            0
        );
        let (a, b) = (reference.energy_record(), restarted.energy_record());
        assert_eq!(a.total.to_bits(), b.total.to_bits());
        Ok(())
    }

    /// A truncated or bit-flipped checkpoint surfaces as a typed error
    /// and leaves the simulation untouched (the restore is atomic).
    #[test]
    fn corrupt_checkpoint_is_a_typed_error() -> Result<(), CheckpointError> {
        let sys = small_water();
        let solver = CutoffOnly { r_cut: 0.55 };
        let mut sim = NveSim::new(sys, &solver, 0.001, 0.55);
        sim.step();
        let good = sim.checkpoint();
        let pos_before = sim.system.pos.clone();
        let time_before = sim.time();
        // Truncation → codec error.
        match sim.restore(&good[..good.len() - 9]) {
            Err(CheckpointError::Codec(_)) => {}
            other => {
                return Err(CheckpointError::Mismatch {
                    what: match other {
                        Ok(()) => "truncated checkpoint accepted",
                        Err(_) => "truncated checkpoint misclassified",
                    },
                })
            }
        }
        // Bad magic → codec error.
        let mut flipped = good.clone();
        flipped[0] ^= 0xff;
        assert!(matches!(
            sim.restore(&flipped),
            Err(CheckpointError::Codec(_))
        ));
        // Trailing garbage → codec error.
        let mut padded = good.clone();
        padded.push(0);
        assert!(matches!(
            sim.restore(&padded),
            Err(CheckpointError::Codec(_))
        ));
        assert_eq!(sim.time().to_bits(), time_before.to_bits());
        assert_eq!(
            max_bit_divergence(&sim.system.pos, &pos_before),
            0,
            "failed restore must not touch the state"
        );
        // And the intact bytes still restore fine afterwards.
        sim.restore(&good)
    }

    /// A checkpoint from a different system is rejected by the topology
    /// guards, not silently accepted.
    #[test]
    fn foreign_checkpoint_is_rejected() -> Result<(), CheckpointError> {
        let solver = CutoffOnly { r_cut: 0.55 };
        let mut small = NveSim::new(small_water(), &solver, 0.001, 0.55);
        let big_sys = {
            let mut s = water_box(125, 4);
            thermalize(&mut s, 300.0, 9);
            s
        };
        let big = NveSim::new(big_sys, &solver, 0.001, 0.55);
        match small.restore(&big.checkpoint()) {
            Err(CheckpointError::Mismatch { .. }) => {}
            other => {
                return Err(CheckpointError::Mismatch {
                    what: match other {
                        Ok(()) => "foreign checkpoint accepted",
                        Err(_) => "foreign checkpoint misclassified",
                    },
                })
            }
        }
        // Same atom count but different charges must also be rejected.
        let mut twin_sys = small_water();
        twin_sys.q[0] += 0.125;
        let twin = NveSim::new(twin_sys, &solver, 0.001, 0.55);
        assert!(matches!(
            small.restore(&twin.checkpoint()),
            Err(CheckpointError::Mismatch {
                what: "topology fingerprint"
            })
        ));
        Ok(())
    }

    /// The run loop drops checkpoints at the promised cadence and the
    /// exact-oracle degraded mode runs through the same machinery.
    #[test]
    fn checkpoint_cadence_and_degraded_mode() -> Result<(), CheckpointError> {
        let sys = small_water();
        let solver = CutoffOnly { r_cut: 0.55 };
        let mut sim = NveSim::new(sys, &solver, 0.001, 0.55);
        sim.exact_short_range = true; // degraded mode: exact erfc oracle
        let run = run_with_checkpoints(&mut sim, 7, 2, 3);
        assert!(run.fault.is_none());
        let steps: Vec<usize> = run.checkpoints.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![0, 3, 6]);
        assert_eq!(run.records.len(), 1 + 3); // t=0 plus steps 2, 4, 6
        let total = match run.records.last() {
            Some(r) => r.total,
            None => f64::NAN,
        };
        assert!(total.is_finite());
        Ok(())
    }
}
