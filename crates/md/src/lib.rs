//! Molecular-dynamics substrate for the TME reproduction.
//!
//! The paper's accuracy experiments run on TIP3P water (Table 1: 32,773
//! molecules; Fig. 4: NVE with SETTLE-constrained water in GROMACS). This
//! crate provides the equivalent machinery from scratch:
//!
//! * [`units`] — GROMACS-compatible unit system and physical constants
//! * [`topology`] — atoms, molecules, exclusions; the TIP3P model
//! * [`water`] — water-box builders (lattice placement, Maxwell velocities)
//! * [`neighbors`] — cell-list neighbour search for the short-range part
//! * [`nonbond`] — Lennard-Jones + short-range Coulomb with exclusions
//! * [`constraints`] — SETTLE (analytic) and SHAKE/RATTLE (iterative) rigid
//!   constraints
//! * [`backend`] — the long-range backend layer: one plan/execute interface
//!   over TME / SPME (B-spline and PSWF) / Ewald / MSM / slab / cutoff
//!   electrostatics (DESIGN.md §14)
//! * [`bonded`] — harmonic bonds/angles (the GP cores' bonded track)
//! * [`solute`] — flexible charged bead chains (protein surrogates)
//! * [`thermostat`] — Berendsen weak coupling for equilibration
//! * [`analysis`] — radial distribution functions, MSD
//! * [`trajectory`] — extended-XYZ frame output for standard MD viewers
//! * [`nve`] — velocity-Verlet NVE integrator and energy bookkeeping
//!   (Fig. 4's observable)
//! * [`checkpoint`] — bitwise checkpoint/restart of the NVE state and the
//!   auto-checkpointing run loop (DESIGN.md §11)

pub mod analysis;
pub mod backend;
pub mod bonded;
pub mod checkpoint;
pub mod constraints;
pub mod neighbors;
pub mod nonbond;
pub mod nve;
pub mod solute;
pub mod thermostat;
pub mod topology;
pub mod trajectory;
pub mod units;
pub mod water;

pub use backend::{
    plan_backend, BackendConfigError, BackendKind, BackendParams, BackendStats, BackendWorkspace,
    LongRangeBackend,
};
pub use checkpoint::{run_with_checkpoints, CheckpointError, CheckpointedRun};
pub use nve::{EnergyRecord, NveSim, RecoveryEvent};
pub use topology::MdSystem;
