//! Rigid-water constraints: analytic SETTLE and iterative SHAKE/RATTLE.
//!
//! The paper's NVE runs (Fig. 4) restrain the water molecules "by using
//! the SETTLE algorithm" (Miyamoto & Kollman 1992). [`settle_positions`]
//! is the analytic three-rotation solution for a rigid 3-site molecule;
//! [`shake_positions`] is the general iterative solver used here to
//! cross-validate it, and [`settle_velocities`] solves the velocity
//! constraints exactly as a 3×3 linear system (the RATTLE velocity step
//! has a closed form for three constraints).

use crate::topology::WaterMol;
use tme_num::vec3::{self, V3};

/// Precomputed rigid-geometry data for one water species.
#[derive(Clone, Copy, Debug)]
pub struct SettleGeom {
    /// O–H and H–H target distances (nm).
    pub d_oh: f64,
    pub d_hh: f64,
    /// Masses (u).
    pub m_o: f64,
    pub m_h: f64,
    /// Canonical frame: O sits `ra` above the COM on the symmetry axis,
    /// the H's `rb` below it and `rc` to each side.
    ra: f64,
    rb: f64,
    rc: f64,
}

impl SettleGeom {
    pub fn new(d_oh: f64, d_hh: f64, m_o: f64, m_h: f64) -> Self {
        let rc = d_hh / 2.0;
        let height = (d_oh * d_oh - rc * rc).sqrt();
        let m_tot = m_o + 2.0 * m_h;
        let ra = 2.0 * m_h * height / m_tot;
        let rb = height - ra;
        Self {
            d_oh,
            d_hh,
            m_o,
            m_h,
            ra,
            rb,
            rc,
        }
    }

    pub fn tip3p() -> Self {
        use crate::units::tip3p;
        Self::new(tip3p::R_OH, tip3p::r_hh(), tip3p::M_O, tip3p::M_H)
    }
}

/// Analytic SETTLE position constraint for one water.
///
/// `old` are the constraint-satisfying positions from the previous step,
/// `new` the unconstrained positions after the drift; `new` is overwritten
/// with the constrained positions. The construction preserves the centre
/// of mass of `new` exactly.
pub fn settle_positions(geom: &SettleGeom, old: &[V3; 3], new: &mut [V3; 3]) {
    let (ma, mb) = (geom.m_o, geom.m_h);
    let m_tot = ma + 2.0 * mb;
    // New centre of mass.
    let com = [
        (ma * new[0][0] + mb * (new[1][0] + new[2][0])) / m_tot,
        (ma * new[0][1] + mb * (new[1][1] + new[2][1])) / m_tot,
        (ma * new[0][2] + mb * (new[1][2] + new[2][2])) / m_tot,
    ];
    // Old positions relative to old O… no: relative vectors of the old
    // triangle (used only for orientation), and new positions relative to
    // the new COM.
    let xb0 = vec3::sub(old[1], old[0]);
    let xc0 = vec3::sub(old[2], old[0]);
    let xa1 = vec3::sub(new[0], com);
    let xb1 = vec3::sub(new[1], com);
    let xc1 = vec3::sub(new[2], com);
    // Orthonormal frame: ẑ ⊥ old plane, x̂ ⊥ (new O, ẑ), ŷ completes.
    let zax = vec3::cross(xb0, xc0);
    let xax = vec3::cross(xa1, zax);
    let yax = vec3::cross(zax, xax);
    let ez = vec3::scale(zax, 1.0 / vec3::norm(zax));
    let ex = vec3::scale(xax, 1.0 / vec3::norm(xax));
    let ey = vec3::scale(yax, 1.0 / vec3::norm(yax));
    let rot = |v: V3| -> V3 { [vec3::dot(v, ex), vec3::dot(v, ey), vec3::dot(v, ez)] };
    let b0d = rot(xb0);
    let c0d = rot(xc0);
    let a1d = rot(xa1);
    let b1d = rot(xb1);
    let c1d = rot(xc1);
    // First two rotations (φ about x̂, ψ about ŷ) place the canonical
    // triangle at the right out-of-plane tilt.
    let sinphi = (a1d[2] / geom.ra).clamp(-1.0, 1.0);
    let cosphi = (1.0 - sinphi * sinphi).sqrt();
    let sinpsi = ((b1d[2] - c1d[2]) / (2.0 * geom.rc * cosphi)).clamp(-1.0, 1.0);
    let cospsi = (1.0 - sinpsi * sinpsi).sqrt();
    let ya2d = geom.ra * cosphi;
    let xb2d = -geom.rc * cospsi;
    let yb2d = -geom.rb * cosphi - geom.rc * sinpsi * sinphi;
    let yc2d = -geom.rb * cosphi + geom.rc * sinpsi * sinphi;
    let za2d = geom.ra * sinphi;
    let zb2d = -geom.rb * sinphi + geom.rc * sinpsi * cosphi;
    let zc2d = -geom.rb * sinphi - geom.rc * sinpsi * cosphi;
    // Third rotation (θ about ẑ) from the constraint that the canonical
    // triangle reproduce the projected old geometry couplings.
    let alpha = xb2d * (b0d[0] - c0d[0]) + b0d[1] * yb2d + c0d[1] * yc2d;
    let beta = xb2d * (c0d[1] - b0d[1]) + b0d[0] * yb2d + c0d[0] * yc2d;
    let gamma = b0d[0] * b1d[1] - b1d[0] * b0d[1] + c0d[0] * c1d[1] - c1d[0] * c0d[1];
    let al2be2 = alpha * alpha + beta * beta;
    let sintheta = ((alpha * gamma - beta * (al2be2 - gamma * gamma).max(0.0).sqrt()) / al2be2)
        .clamp(-1.0, 1.0);
    let costheta = (1.0 - sintheta * sintheta).sqrt();
    let xa3d = -ya2d * sintheta;
    let ya3d = ya2d * costheta;
    let za3d = za2d;
    let xb3d = xb2d * costheta - yb2d * sintheta;
    let yb3d = xb2d * sintheta + yb2d * costheta;
    let zb3d = zb2d;
    let xc3d = -xb2d * costheta - yc2d * sintheta;
    let yc3d = -xb2d * sintheta + yc2d * costheta;
    let zc3d = zc2d;
    // Back to the lab frame, translated to the COM.
    let unrot = |v: V3| -> V3 {
        [
            v[0] * ex[0] + v[1] * ey[0] + v[2] * ez[0],
            v[0] * ex[1] + v[1] * ey[1] + v[2] * ez[1],
            v[0] * ex[2] + v[1] * ey[2] + v[2] * ez[2],
        ]
    };
    new[0] = vec3::add(com, unrot([xa3d, ya3d, za3d]));
    new[1] = vec3::add(com, unrot([xb3d, yb3d, zb3d]));
    new[2] = vec3::add(com, unrot([xc3d, yc3d, zc3d]));
}

/// Exact velocity constraint for one water: solves the three Lagrange
/// multipliers of the RATTLE velocity step as a 3×3 linear system.
///
/// After the call, relative velocities along all three bonds vanish and
/// linear momentum is unchanged.
pub fn settle_velocities(geom: &SettleGeom, pos: &[V3; 3], vel: &mut [V3; 3]) {
    // Constraints: (0,1), (0,2), (1,2).
    const PAIRS: [(usize, usize); 3] = [(0, 1), (0, 2), (1, 2)];
    let inv_m = [1.0 / geom.m_o, 1.0 / geom.m_h, 1.0 / geom.m_h];
    let mut e = [[0.0f64; 3]; 3];
    for (c, &(i, j)) in PAIRS.iter().enumerate() {
        let d = vec3::sub(pos[i], pos[j]);
        e[c] = vec3::scale(d, 1.0 / vec3::norm(d));
    }
    // A_{cc'} λ_{c'} = −b_c with
    // b_c = (v_i − v_j)·e_c,
    // A_{cc'} = e_c·e_{c'} (δ_{i,i'}/m_i − δ_{i,j'}/m_i − δ_{j,i'}/m_j + δ_{j,j'}/m_j).
    let mut a = [[0.0f64; 3]; 3];
    let mut b = [0.0f64; 3];
    for (c, &(i, j)) in PAIRS.iter().enumerate() {
        b[c] = vec3::dot(vec3::sub(vel[i], vel[j]), e[c]);
        for (cp, &(ip, jp)) in PAIRS.iter().enumerate() {
            let mut coupling = 0.0;
            if i == ip {
                coupling += inv_m[i];
            }
            if i == jp {
                coupling -= inv_m[i];
            }
            if j == ip {
                coupling -= inv_m[j];
            }
            if j == jp {
                coupling += inv_m[j];
            }
            a[c][cp] = coupling * vec3::dot(e[c], e[cp]);
        }
    }
    let lambda = solve3(a, [-b[0], -b[1], -b[2]]);
    for (c, &(i, j)) in PAIRS.iter().enumerate() {
        vec3::acc(&mut vel[i], vec3::scale(e[c], lambda[c] * inv_m[i]));
        vec3::acc(&mut vel[j], vec3::scale(e[c], -lambda[c] * inv_m[j]));
    }
}

/// Solve a 3×3 linear system by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // triangular index arithmetic reads clearer
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        let mut piv = col;
        for p in (col + 1)..3 {
            if a[p][col].abs() > a[piv][col].abs() {
                piv = p;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let diag = a[col][col];
        debug_assert!(diag.abs() > 1e-30, "singular constraint system");
        for row in (col + 1)..3 {
            let f = a[row][col] / diag;
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for col in (0..3).rev() {
        let mut s = b[col];
        for k in (col + 1)..3 {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    x
}

/// Iterative SHAKE position constraint for a set of distance constraints
/// `(i, j, target)`; adjusts `pos` so every |pos_i − pos_j| = target,
/// using `reference` displacements for the correction directions.
pub fn shake_positions(
    pos: &mut [V3],
    reference: &[V3],
    constraints: &[(usize, usize, f64)],
    inv_mass: &[f64],
    tol: f64,
    max_iter: usize,
) -> bool {
    for _ in 0..max_iter {
        let mut worst = 0.0f64;
        for &(i, j, target) in constraints {
            let d = vec3::sub(pos[i], pos[j]);
            let r2 = vec3::norm_sqr(d);
            let diff = r2 - target * target;
            worst = worst.max(diff.abs() / (target * target));
            let dref = vec3::sub(reference[i], reference[j]);
            let denom = 2.0 * (inv_mass[i] + inv_mass[j]) * vec3::dot(d, dref);
            let g = diff / denom;
            vec3::acc(&mut pos[i], vec3::scale(dref, -g * inv_mass[i]));
            vec3::acc(&mut pos[j], vec3::scale(dref, g * inv_mass[j]));
        }
        if worst < tol {
            return true;
        }
    }
    false
}

/// Apply SETTLE position + nothing else to every water in a system's
/// position array (convenience used by the integrator).
pub fn settle_all_positions(geom: &SettleGeom, waters: &[WaterMol], old: &[V3], new: &mut [V3]) {
    for w in waters {
        let old3 = [old[w.o], old[w.h1], old[w.h2]];
        let mut new3 = [new[w.o], new[w.h1], new[w.h2]];
        settle_positions(geom, &old3, &mut new3);
        new[w.o] = new3[0];
        new[w.h1] = new3[1];
        new[w.h2] = new3[2];
    }
}

/// Apply the velocity constraint to every water.
pub fn settle_all_velocities(geom: &SettleGeom, waters: &[WaterMol], pos: &[V3], vel: &mut [V3]) {
    for w in waters {
        let pos3 = [pos[w.o], pos[w.h1], pos[w.h2]];
        let mut vel3 = [vel[w.o], vel[w.h1], vel[w.h2]];
        settle_velocities(geom, &pos3, &mut vel3);
        vel[w.o] = vel3[0];
        vel[w.h1] = vel3[1];
        vel[w.h2] = vel3[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tme_num::rng::SplitMix64;

    fn canonical_water(geom: &SettleGeom) -> [V3; 3] {
        [
            [0.0, geom.ra, 0.0],
            [-geom.rc, -geom.rb, 0.0],
            [geom.rc, -geom.rb, 0.0],
        ]
    }

    fn rigid_ok(geom: &SettleGeom, p: &[V3; 3], tol: f64) -> bool {
        let doh1 = vec3::norm(vec3::sub(p[0], p[1]));
        let doh2 = vec3::norm(vec3::sub(p[0], p[2]));
        let dhh = vec3::norm(vec3::sub(p[1], p[2]));
        (doh1 - geom.d_oh).abs() < tol
            && (doh2 - geom.d_oh).abs() < tol
            && (dhh - geom.d_hh).abs() < tol
    }

    fn com(geom: &SettleGeom, p: &[V3; 3]) -> V3 {
        let m = geom.m_o + 2.0 * geom.m_h;
        [
            (geom.m_o * p[0][0] + geom.m_h * (p[1][0] + p[2][0])) / m,
            (geom.m_o * p[0][1] + geom.m_h * (p[1][1] + p[2][1])) / m,
            (geom.m_o * p[0][2] + geom.m_h * (p[1][2] + p[2][2])) / m,
        ]
    }

    fn perturbed_cases(n: usize, scale: f64, seed: u64) -> Vec<([V3; 3], [V3; 3])> {
        let geom = SettleGeom::tip3p();
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..n)
            .map(|_| -> ([V3; 3], [V3; 3]) {
                // Random rigid orientation of the old triangle.
                let old = {
                    let base = canonical_water(&geom);
                    let axis = [
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0f64),
                    ];
                    let n = vec3::norm(axis).max(1e-6);
                    let u = vec3::scale(axis, 1.0 / n);
                    let th: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                    let rot = |v: V3| {
                        // Rodrigues rotation.
                        let c = th.cos();
                        let s = th.sin();
                        let cu = vec3::cross(u, v);
                        let du = vec3::dot(u, v);
                        [
                            v[0] * c + cu[0] * s + u[0] * du * (1.0 - c),
                            v[1] * c + cu[1] * s + u[1] * du * (1.0 - c),
                            v[2] * c + cu[2] * s + u[2] * du * (1.0 - c),
                        ]
                    };
                    [rot(base[0]), rot(base[1]), rot(base[2])]
                };
                // Unconstrained drift: small random displacements.
                if scale == 0.0 {
                    return (old, old);
                }
                let new = [
                    vec3::add(
                        old[0],
                        [
                            rng.gen_range(-scale..scale),
                            rng.gen_range(-scale..scale),
                            rng.gen_range(-scale..scale),
                        ],
                    ),
                    vec3::add(
                        old[1],
                        [
                            rng.gen_range(-scale..scale),
                            rng.gen_range(-scale..scale),
                            rng.gen_range(-scale..scale),
                        ],
                    ),
                    vec3::add(
                        old[2],
                        [
                            rng.gen_range(-scale..scale),
                            rng.gen_range(-scale..scale),
                            rng.gen_range(-scale..scale),
                        ],
                    ),
                ];
                (old, new)
            })
            .collect()
    }

    #[test]
    fn settle_restores_rigid_geometry() {
        let geom = SettleGeom::tip3p();
        for (old, new) in perturbed_cases(200, 0.005, 11) {
            let mut fixed = new;
            settle_positions(&geom, &old, &mut fixed);
            assert!(rigid_ok(&geom, &fixed, 1e-10), "{fixed:?}");
        }
    }

    #[test]
    fn settle_preserves_centre_of_mass() {
        let geom = SettleGeom::tip3p();
        for (old, new) in perturbed_cases(100, 0.004, 5) {
            let before = com(&geom, &new);
            let mut fixed = new;
            settle_positions(&geom, &old, &mut fixed);
            let after = com(&geom, &fixed);
            for a in 0..3 {
                assert!((before[a] - after[a]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn settle_is_identity_when_already_rigid() {
        let geom = SettleGeom::tip3p();
        for (old, _) in perturbed_cases(50, 0.0, 3) {
            let mut fixed = old;
            settle_positions(&geom, &old, &mut fixed);
            for a in 0..3 {
                for c in 0..3 {
                    assert!(
                        (fixed[a][c] - old[a][c]).abs() < 1e-10,
                        "{fixed:?} vs {old:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn settle_agrees_with_shake() {
        let geom = SettleGeom::tip3p();
        let inv_m = [1.0 / geom.m_o, 1.0 / geom.m_h, 1.0 / geom.m_h];
        let cons = [
            (0usize, 1usize, geom.d_oh),
            (0, 2, geom.d_oh),
            (1, 2, geom.d_hh),
        ];
        for (old, new) in perturbed_cases(100, 0.003, 77) {
            let mut via_settle = new;
            settle_positions(&geom, &old, &mut via_settle);
            let mut via_shake = new.to_vec();
            let ok = shake_positions(&mut via_shake, &old, &cons, &inv_m, 1e-14, 500);
            assert!(ok, "SHAKE failed to converge");
            for a in 0..3 {
                for c in 0..3 {
                    assert!(
                        (via_settle[a][c] - via_shake[a][c]).abs() < 1e-7,
                        "atom {a} axis {c}: {} vs {}",
                        via_settle[a][c],
                        via_shake[a][c]
                    );
                }
            }
        }
    }

    #[test]
    fn velocity_constraint_zeroes_bond_rates() {
        let geom = SettleGeom::tip3p();
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..100 {
            let pos = canonical_water(&geom);
            let mut vel = [[0.0; 3]; 3];
            for v in &mut vel {
                *v = [
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ];
            }
            let p_before = [
                geom.m_o * vel[0][0] + geom.m_h * (vel[1][0] + vel[2][0]),
                geom.m_o * vel[0][1] + geom.m_h * (vel[1][1] + vel[2][1]),
                geom.m_o * vel[0][2] + geom.m_h * (vel[1][2] + vel[2][2]),
            ];
            settle_velocities(&geom, &pos, &mut vel);
            for &(i, j) in &[(0usize, 1usize), (0, 2), (1, 2)] {
                let e = vec3::sub(pos[i], pos[j]);
                let rate = vec3::dot(vec3::sub(vel[i], vel[j]), e);
                assert!(rate.abs() < 1e-12, "bond rate {rate}");
            }
            let p_after = [
                geom.m_o * vel[0][0] + geom.m_h * (vel[1][0] + vel[2][0]),
                geom.m_o * vel[0][1] + geom.m_h * (vel[1][1] + vel[2][1]),
                geom.m_o * vel[0][2] + geom.m_h * (vel[1][2] + vel[2][2]),
            ];
            for a in 0..3 {
                assert!((p_before[a] - p_after[a]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shake_converges_on_large_perturbations() {
        let geom = SettleGeom::tip3p();
        let inv_m = [1.0 / geom.m_o, 1.0 / geom.m_h, 1.0 / geom.m_h];
        let cons = [
            (0usize, 1usize, geom.d_oh),
            (0, 2, geom.d_oh),
            (1, 2, geom.d_hh),
        ];
        for (old, new) in perturbed_cases(20, 0.02, 123) {
            let mut p = new.to_vec();
            let ok = shake_positions(&mut p, &old, &cons, &inv_m, 1e-12, 1000);
            assert!(ok);
            let arr = [p[0], p[1], p[2]];
            assert!(rigid_ok(&geom, &arr, 1e-9));
        }
    }
}
