//! Trajectory output in the (extended) XYZ text format — the standard
//! interchange format every MD viewer (VMD, OVITO, ASE) reads, so runs
//! from this substrate can be inspected with ordinary tooling.

use crate::topology::MdSystem;
use std::io::{self, Write};

/// Writes XYZ frames to any `Write` sink (file, buffer, stdout).
///
/// One formatted line is written per atom; pass a `BufWriter` when the
/// sink is an unbuffered file or pipe.
pub struct XyzWriter<W: Write> {
    sink: W,
    /// Wrap positions into the box when writing (simulation state itself
    /// stays unwrapped so molecules remain whole).
    pub wrap: bool,
}

impl<W: Write> XyzWriter<W> {
    pub fn new(sink: W) -> Self {
        Self { sink, wrap: true }
    }

    /// Per-atom element labels: TIP3P pattern (O, H, H per water) for
    /// water atoms, `X` for anything else. Built in one O(N) pass.
    fn elements(sys: &MdSystem) -> Vec<&'static str> {
        let mut labels = vec!["X"; sys.len()];
        for w in &sys.waters {
            labels[w.o] = "O";
            labels[w.h1] = "H";
            labels[w.h2] = "H";
        }
        labels
    }

    /// Write one frame with a comment carrying time and box (the
    /// extended-XYZ `Lattice=` convention).
    pub fn write_frame(&mut self, sys: &MdSystem, time_ps: f64) -> io::Result<()> {
        writeln!(self.sink, "{}", sys.len())?;
        writeln!(
            self.sink,
            "Lattice=\"{:.6} 0 0 0 {:.6} 0 0 0 {:.6}\" Properties=species:S:1:pos:R:3 Time={time_ps:.6}",
            sys.box_l[0], sys.box_l[1], sys.box_l[2]
        )?;
        let labels = Self::elements(sys);
        for (pos, label) in sys.pos.iter().zip(&labels) {
            let mut r = if self.wrap {
                tme_num::vec3::wrap(*pos, sys.box_l)
            } else {
                *pos
            };
            if self.wrap {
                // Values within the printed precision of L would render as
                // exactly the box length; snap them to the equivalent 0.
                for (c, l) in r.iter_mut().zip(&sys.box_l) {
                    if *l - *c < 5e-7 {
                        *c = 0.0;
                    }
                }
            }
            writeln!(self.sink, "{label} {:.6} {:.6} {:.6}", r[0], r[1], r[2])?;
        }
        Ok(())
    }

    /// Flush and return the sink.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::water::water_box;

    /// Tests return `Result` and use `?` so I/O and parse failures carry
    /// their own error context instead of panicking through `unwrap`.
    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn frame_structure_is_valid_xyz() -> TestResult {
        let sys = water_box(8, 1);
        let mut w = XyzWriter::new(Vec::new());
        w.write_frame(&sys, 0.5)?;
        w.write_frame(&sys, 1.0)?;
        let text = String::from_utf8(w.into_inner()?)?;
        let lines: Vec<&str> = text.lines().collect();
        // Two frames of (2 header + 24 atom) lines.
        assert_eq!(lines.len(), 2 * (2 + 24));
        assert_eq!(lines[0], "24");
        assert!(lines[1].contains("Lattice=") && lines[1].contains("Time=0.5"));
        // TIP3P pattern: O H H repeating.
        assert!(lines[2].starts_with("O "));
        assert!(lines[3].starts_with("H "));
        assert!(lines[4].starts_with("H "));
        assert!(lines[5].starts_with("O "));
        Ok(())
    }

    #[test]
    fn wrapped_positions_inside_box() -> TestResult {
        let mut sys = water_box(8, 2);
        sys.pos[0] = [-0.3, 100.0, 0.5]; // far outside
        let mut w = XyzWriter::new(Vec::new());
        w.write_frame(&sys, 0.0)?;
        let text = String::from_utf8(w.into_inner()?)?;
        let first_atom = text.lines().nth(2).ok_or("no atom line")?;
        let coords: Vec<f64> = first_atom
            .split_whitespace()
            .skip(1)
            .map(str::parse)
            .collect::<Result<_, _>>()?;
        for (c, l) in coords.iter().zip(&sys.box_l) {
            assert!(*c >= 0.0 && *c < *l, "{c} outside [0, {l})");
        }
        Ok(())
    }

    #[test]
    fn unwrapped_mode_preserves_raw_positions() -> TestResult {
        let mut sys = water_box(4, 3);
        sys.pos[0] = [-0.25, 0.1, 0.1];
        let mut w = XyzWriter::new(Vec::new());
        w.wrap = false;
        w.write_frame(&sys, 0.0)?;
        let text = String::from_utf8(w.into_inner()?)?;
        assert!(text.lines().nth(2).ok_or("no atom line")?.contains("-0.25"));
        Ok(())
    }

    #[test]
    fn non_water_atoms_labelled_x() -> TestResult {
        use crate::solute::{add_chain, ChainParams};
        let mut sys = water_box(4, 5);
        add_chain(
            &mut sys,
            &ChainParams {
                beads: 3,
                ..Default::default()
            },
            [0.5, 0.5, 0.1],
        );
        let mut w = XyzWriter::new(Vec::new());
        w.write_frame(&sys, 0.0)?;
        let text = String::from_utf8(w.into_inner()?)?;
        let last = text.lines().last().ok_or("empty output")?;
        assert!(last.starts_with("X "), "{last}");
        Ok(())
    }
}
