//! NVE molecular dynamics with velocity-Verlet and SETTLE — the harness
//! behind the paper's Fig. 4 (total-energy conservation of SPME vs TME).
//!
//! Per step:
//! 1. `v += (F/m)·dt/2`, `r += v·dt`, SETTLE positions,
//!    effective velocity update `v = (r_new − r_old)/dt` for constrained
//!    atoms (keeps velocities consistent with the constrained motion),
//! 2. recompute forces (short-range LJ + erfc Coulomb via cell list,
//!    mesh long-range via the pluggable solver, exclusion corrections),
//! 3. `v += (F/m)·dt/2`, SETTLE velocities.
//!
//! Total energy = kinetic + LJ + Coulomb(short + mesh + self + exclusion),
//! in kJ/mol. The observable of Fig. 4 is this total vs time.

use crate::backend::{BackendWorkspace, LongRangeBackend};
use crate::checkpoint::CheckpointError;
use crate::constraints::{settle_all_positions, settle_all_velocities, SettleGeom};
use crate::neighbors::VerletList;
use crate::nonbond;
use crate::topology::MdSystem;
use crate::units::COULOMB;
use tme_core::TmeRecoverableError;
use tme_mesh::cells::CellBins;
use tme_mesh::model::CoulombResult;
use tme_num::bytes::{ByteReader, ByteWriter, CodecError};
use tme_num::special::TWO_OVER_SQRT_PI;
use tme_num::table::PairKernelTable;
use tme_num::vec3::V3;

/// Magic/version word of the [`NveSim::checkpoint`] byte format.
const NVE_CHECKPOINT_MAGIC: u64 = u64::from_le_bytes(*b"TMENVE1\0");

/// One sampled energy record (kJ/mol, ps, K).
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyRecord {
    pub time: f64,
    pub kinetic: f64,
    pub lj: f64,
    pub coulomb: f64,
    pub bonded: f64,
    pub potential: f64,
    pub total: f64,
    pub temperature: f64,
}

/// One numerical-fault recovery the integrator performed mid-run
/// (DESIGN.md §11): the tabulated short-range path produced a non-finite
/// result and the step was re-evaluated through the exact `erfc` oracle.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryEvent {
    /// Step count at which the fault was detected.
    pub step: usize,
    /// Simulation time (ps) at detection.
    pub time: f64,
    /// What the evaluation reported.
    pub error: TmeRecoverableError,
}

/// An NVE simulation bound to a system and a long-range solver.
pub struct NveSim<'a> {
    pub system: MdSystem,
    solver: &'a dyn LongRangeBackend,
    geom: SettleGeom,
    /// Time step (ps).
    pub dt: f64,
    /// Short-range cutoff (nm) for LJ + erfc Coulomb.
    pub r_cut: f64,
    forces: Vec<V3>,
    energies: CachedEnergies,
    time: f64,
    neighbours: Option<VerletList>,
    /// SoA cell bins reused across Verlet rebuilds (scratch only — not
    /// checkpointed; the list itself is restored verbatim, DESIGN.md §11).
    bins: CellBins,
    /// Verlet skin (nm); pairs within `r_cut + skin` are listed and the
    /// list is rebuilt once an atom moves `skin/2`.
    pub skin: f64,
    /// Evaluate the long-range mesh every `mesh_interval` steps and apply
    /// it as an r-RESPA impulse of weight `mesh_interval` at those steps —
    /// the multiple-time-stepping policy the Anton machines use ("they
    /// calculate \[the\] long range part at every other step", paper
    /// Table 2 note). 1 = every step (plain velocity Verlet).
    pub mesh_interval: usize,
    step_count: usize,
    /// Short-range + bonded + exclusion forces at the current positions.
    forces_fast: Vec<V3>,
    /// Mesh forces (× COULOMB) at the last outer (boundary) step.
    mesh_forces: Vec<V3>,
    /// Opaque per-backend execute workspace (DESIGN.md §14), so
    /// steady-state stepping does not reallocate the mesh pipeline.
    lr_ws: BackendWorkspace,
    /// Reused mesh result buffer for [`LongRangeBackend::mesh_into`].
    mesh_result: CoulombResult,
    cached_mesh_energy: f64,
    /// Impulse weight of `mesh_forces` for kicks using the current forces:
    /// `mesh_interval` at outer boundaries, 0 in between.
    mesh_weight: f64,
    /// Plan-time tabulated pair kernels for the solver's α over `[0, r_c]`
    /// (rebuilt only if α or the cutoff changes — steady-state stepping
    /// never reallocates it).
    pair_table: PairKernelTable,
    /// Force the exact-`erfc` short-range path on every step (bypassing
    /// the tabulated kernels). Normally off — it is the degraded mode the
    /// fault fallback drops into per-evaluation.
    pub exact_short_range: bool,
    /// Faults detected and recovered from (exact-oracle re-evaluations).
    recoveries: Vec<RecoveryEvent>,
    /// The unrecoverable numerical fault that stopped stepping, if any.
    last_error: Option<TmeRecoverableError>,
}

#[derive(Clone, Copy, Debug, Default)]
struct CachedEnergies {
    lj: f64,
    coulomb: f64,
    bonded: f64,
}

impl<'a> NveSim<'a> {
    /// Set up the simulation: projects initial velocities onto the
    /// constraint manifold and computes initial forces.
    pub fn new(
        mut system: MdSystem,
        solver: &'a dyn LongRangeBackend,
        dt: f64,
        r_cut: f64,
    ) -> Self {
        let min_edge = system.box_l.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            r_cut <= min_edge / 2.0 + 1e-12,
            "r_cut {r_cut} exceeds half the smallest box edge {min_edge}; \
             use a larger box or a smaller cutoff"
        );
        let geom = SettleGeom::tip3p();
        settle_all_velocities(&geom, &system.waters, &system.pos, &mut system.vel);
        system.remove_com_velocity();
        let mut sim = Self {
            system,
            solver,
            geom,
            dt,
            r_cut,
            forces: Vec::new(),
            energies: CachedEnergies::default(),
            time: 0.0,
            neighbours: None,
            bins: CellBins::default(),
            skin: 0.2,
            mesh_interval: 1,
            step_count: 0,
            forces_fast: Vec::new(),
            mesh_forces: Vec::new(),
            lr_ws: solver.make_workspace(),
            mesh_result: CoulombResult::default(),
            cached_mesh_energy: 0.0,
            mesh_weight: 1.0,
            pair_table: PairKernelTable::new(solver.alpha(), r_cut),
            exact_short_range: false,
            recoveries: Vec::new(),
            last_error: None,
        };
        if let Err(e) = sim.compute_forces() {
            sim.last_error = Some(e);
        }
        sim
    }

    pub fn time(&self) -> f64 {
        self.time
    }

    pub fn forces(&self) -> &[V3] {
        &self.forces
    }

    /// Recompute all forces and cache the potential-energy terms.
    ///
    /// Numerical faults are handled per DESIGN.md §11: a non-finite result
    /// from the tabulated short-range path is re-evaluated through the
    /// exact `erfc` oracle (recorded in [`NveSim::recoveries`]); anything
    /// still non-finite afterwards — mesh included — is unrecoverable here
    /// and surfaces as a typed error for the checkpoint/restart layer.
    fn compute_forces(&mut self) -> Result<(), TmeRecoverableError> {
        let alpha = self.solver.alpha();
        // Keep the kernel table consistent with the solver's splitting and
        // the (possibly caller-adjusted) cutoff; a no-op in steady state.
        if self.pair_table.alpha().to_bits() != alpha.to_bits()
            || self.pair_table.r_max() < self.r_cut
        {
            self.pair_table = PairKernelTable::new(alpha, self.r_cut);
        }
        let sys = &self.system;
        let n = sys.len();
        let mut forces = vec![[0.0; 3]; n];
        // Short range (LJ + erfc Coulomb) over the Verlet list, rebuilt
        // once any atom has drifted half a skin. take()/insert() keeps the
        // "a list exists below this point" guarantee structural instead of
        // asserted with unwrap (lint rule L2).
        let list = match self.neighbours.take() {
            Some(l) if !l.needs_rebuild(&sys.pos) => self.neighbours.insert(l),
            _ => self.neighbours.insert(VerletList::build_with_bins(
                &sys.pos,
                sys.box_l,
                self.r_cut,
                self.skin,
                |i, j| sys.is_excluded(i, j),
                &mut self.bins,
            )),
        };
        let short = if self.exact_short_range {
            nonbond::short_range_verlet_exact(sys, list, alpha, &mut forces)
        } else {
            let s = nonbond::short_range_verlet(sys, list, &self.pair_table, &mut forces);
            match short_range_fault(&s, &forces) {
                None => s,
                Some(error) => {
                    // Graceful degradation: redo this evaluation through
                    // the exact erfc oracle and record the recovery.
                    self.recoveries.push(RecoveryEvent {
                        step: self.step_count,
                        time: self.time,
                        error,
                    });
                    forces.fill([0.0; 3]);
                    nonbond::short_range_verlet_exact(sys, list, alpha, &mut forces)
                }
            }
        };
        // Bonded terms (flexible molecules; empty for pure rigid water).
        let bonded_energy = sys.bonded.evaluate(&sys.pos, sys.box_l, &mut forces);
        // Long range (mesh), reduced units → kJ/mol. With multiple time
        // stepping the mesh is evaluated only at outer boundaries
        // (step_count divisible by the interval) and applied as an
        // impulse of weight `mesh_interval` by the kicks that straddle
        // the boundary (r-RESPA); in between its weight is zero.
        let interval = self.mesh_interval.max(1);
        let coul_sys = sys.coulomb_system();
        if self.step_count.is_multiple_of(interval) {
            self.solver
                .mesh_into(&coul_sys, &mut self.lr_ws, &mut self.mesh_result)?;
            // The mesh has no oracle fallback at this layer — a non-finite
            // reciprocal result is unrecoverable in-step and goes to the
            // checkpoint/restart layer as a typed error.
            if !self.mesh_result.energy.is_finite() {
                return Err(TmeRecoverableError::NonFiniteEnergy {
                    value: self.mesh_result.energy,
                });
            }
            if let Some(atom) = self
                .mesh_result
                .forces
                .iter()
                .position(|f| !f.iter().all(|c| c.is_finite()))
            {
                return Err(TmeRecoverableError::NonFiniteForce { atom });
            }
            self.mesh_forces.clear();
            self.mesh_forces.extend(
                self.mesh_result
                    .forces
                    .iter()
                    .map(|m| [COULOMB * m[0], COULOMB * m[1], COULOMB * m[2]]),
            );
            self.cached_mesh_energy = self.mesh_result.energy;
            self.mesh_weight = interval as f64;
        } else {
            self.mesh_weight = 0.0;
        }
        // Self term (no force) + exclusion corrections (with forces) —
        // these cancel contributions the mesh added, so they only apply
        // when the solver actually has a mesh (a Wolf/cutoff solver never
        // added the erf(αr)/r parts being subtracted).
        let (self_energy, excl_energy) = if self.solver.has_mesh() {
            (
                -COULOMB * 0.5 * TWO_OVER_SQRT_PI * alpha * coul_sys.charge_sq_sum(),
                nonbond::exclusion_correction(sys, &self.pair_table, &mut forces),
            )
        } else {
            (0.0, 0.0)
        };
        self.energies = CachedEnergies {
            lj: short.lj,
            coulomb: short.coulomb + COULOMB * self.cached_mesh_energy + self_energy + excl_energy,
            bonded: bonded_energy,
        };
        self.forces_fast = forces;
        // Effective per-step force view (fast + weighted mesh impulse).
        self.forces = self
            .forces_fast
            .iter()
            .zip(&self.mesh_forces)
            .map(|(f, m)| {
                [
                    f[0] + self.mesh_weight * m[0],
                    f[1] + self.mesh_weight * m[1],
                    f[2] + self.mesh_weight * m[2],
                ]
            })
            .collect();
        // Forces are the solver↔integrator boundary: a NaN here (overlapping
        // atoms, broken solver) would silently poison every later step —
        // checked in release builds too, now that the caller can answer.
        if let Some(atom) = self
            .forces
            .iter()
            .position(|f| !f.iter().all(|c| c.is_finite()))
        {
            return Err(TmeRecoverableError::NonFiniteForce { atom });
        }
        Ok(())
    }

    /// One velocity-Verlet + SETTLE step, surfacing unrecoverable
    /// numerical faults as typed errors. On `Err` the in-flight step is
    /// abandoned mid-update — restart from a checkpoint
    /// ([`NveSim::restore`]) rather than continuing.
    #[allow(clippy::needless_range_loop)] // axis loops index parallel arrays
    pub fn try_step(&mut self) -> Result<(), TmeRecoverableError> {
        let dt = self.dt;
        let n = self.system.len();
        // Half kick + drift.
        for i in 0..n {
            let inv_m = 1.0 / self.system.mass[i];
            for a in 0..3 {
                self.system.vel[i][a] += 0.5 * dt * self.forces[i][a] * inv_m;
            }
        }
        let old_pos = self.system.pos.clone();
        for i in 0..n {
            for a in 0..3 {
                self.system.pos[i][a] += dt * self.system.vel[i][a];
            }
        }
        // Position constraints; fold the correction back into velocities.
        settle_all_positions(
            &self.geom,
            &self.system.waters,
            &old_pos,
            &mut self.system.pos,
        );
        for w in &self.system.waters {
            for idx in [w.o, w.h1, w.h2] {
                for a in 0..3 {
                    self.system.vel[idx][a] = (self.system.pos[idx][a] - old_pos[idx][a]) / dt;
                }
            }
        }
        // New forces, second half kick, velocity constraints.
        self.compute_forces()?;
        for i in 0..n {
            let inv_m = 1.0 / self.system.mass[i];
            for a in 0..3 {
                self.system.vel[i][a] += 0.5 * dt * self.forces[i][a] * inv_m;
            }
        }
        settle_all_velocities(
            &self.geom,
            &self.system.waters,
            &self.system.pos,
            &mut self.system.vel,
        );
        self.time += dt;
        self.step_count += 1;
        // State leaving the step must be finite; catching the first bad
        // step localises blow-ups (too-large dt, constraint failure).
        debug_assert!(
            self.system
                .pos
                .iter()
                .chain(&self.system.vel)
                .all(|v| v.iter().all(|c| c.is_finite())),
            "non-finite position/velocity after step {} (t = {} ps)",
            self.step_count,
            self.time
        );
        Ok(())
    }

    /// One velocity-Verlet + SETTLE step. Infallible wrapper around
    /// [`NveSim::try_step`]: a fault is latched into
    /// [`NveSim::last_error`] and further stepping becomes a no-op until
    /// the state is restored.
    pub fn step(&mut self) {
        if self.last_error.is_some() {
            return;
        }
        if let Err(e) = self.try_step() {
            self.last_error = Some(e);
        }
    }

    /// The fault that stopped stepping, if any. Cleared by
    /// [`NveSim::restore`].
    pub fn last_error(&self) -> Option<TmeRecoverableError> {
        self.last_error
    }

    /// Faults detected and recovered from in-step (oldest first).
    pub fn recoveries(&self) -> &[RecoveryEvent] {
        &self.recoveries
    }

    /// Serialise the full dynamical state for a bitwise-identical restart
    /// (DESIGN.md §11): positions, velocities, every cached force view,
    /// the r-RESPA mesh-impulse state, AND the Verlet list — its pair
    /// order fixes the floating-point summation order of the short-range
    /// forces, so rebuilding the list on restore would break bit identity.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(NVE_CHECKPOINT_MAGIC);
        w.put_usize(self.system.len());
        w.put_usize(self.system.waters.len());
        w.put_u64(topology_fingerprint(&self.system));
        w.put_f64(self.solver.alpha());
        w.put_f64(self.dt);
        w.put_f64(self.r_cut);
        w.put_f64(self.skin);
        w.put_usize(self.mesh_interval);
        w.put_f64(self.time);
        w.put_usize(self.step_count);
        w.put_f64(self.cached_mesh_energy);
        w.put_f64(self.mesh_weight);
        w.put_f64(self.energies.lj);
        w.put_f64(self.energies.coulomb);
        w.put_f64(self.energies.bonded);
        w.put_u8(u8::from(self.exact_short_range));
        w.put_v3_slice(&self.system.pos);
        w.put_v3_slice(&self.system.vel);
        w.put_v3_slice(&self.forces);
        w.put_v3_slice(&self.forces_fast);
        w.put_v3_slice(&self.mesh_forces);
        match &self.neighbours {
            None => w.put_u8(0),
            Some(l) => {
                w.put_u8(1);
                w.put_usize(l.pairs().len());
                for &(i, j) in l.pairs() {
                    w.put_u32(i);
                    w.put_u32(j);
                }
                w.put_f64(l.cutoff());
                w.put_f64(l.skin());
                for b in l.box_l() {
                    w.put_f64(b);
                }
                w.put_v3_slice(l.ref_pos());
            }
        }
        w.into_bytes()
    }

    /// Restore a [`NveSim::checkpoint`] into this simulation, resuming the
    /// trajectory bitwise. The checkpoint must belong to this system and
    /// solver — guarded by atom/water counts, a topology fingerprint
    /// (masses, charges, LJ parameters, box, exclusions), the solver's α
    /// and the cutoff the kernel table was built for. The restore is
    /// atomic: on `Err` the simulation is untouched. Clears any latched
    /// [`NveSim::last_error`].
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let n = self.system.len();
        let mut r = ByteReader::new(bytes);
        r.expect_u64(NVE_CHECKPOINT_MAGIC)?;
        if r.get_u64()? as usize != n {
            return Err(CheckpointError::Mismatch { what: "atom count" });
        }
        if r.get_u64()? as usize != self.system.waters.len() {
            return Err(CheckpointError::Mismatch {
                what: "water count",
            });
        }
        if r.get_u64()? != topology_fingerprint(&self.system) {
            return Err(CheckpointError::Mismatch {
                what: "topology fingerprint",
            });
        }
        if r.get_f64()?.to_bits() != self.solver.alpha().to_bits() {
            return Err(CheckpointError::Mismatch {
                what: "solver splitting alpha",
            });
        }
        let dt = r.get_f64()?;
        let r_cut = r.get_f64()?;
        // The pair-kernel table layout depends on the cutoff it was built
        // over; a different cutoff would silently change lookup bits.
        if r_cut.to_bits() != self.r_cut.to_bits() {
            return Err(CheckpointError::Mismatch {
                what: "short-range cutoff",
            });
        }
        let skin = r.get_f64()?;
        let mesh_interval = r.get_u64()? as usize;
        let time = r.get_f64()?;
        let step_count = r.get_u64()? as usize;
        let cached_mesh_energy = r.get_f64()?;
        let mesh_weight = r.get_f64()?;
        let energies = CachedEnergies {
            lj: r.get_f64()?,
            coulomb: r.get_f64()?,
            bonded: r.get_f64()?,
        };
        let exact_short_range = r.get_u8()? != 0;
        let pos = r.get_v3_vec()?;
        let vel = r.get_v3_vec()?;
        let forces = r.get_v3_vec()?;
        let forces_fast = r.get_v3_vec()?;
        let mesh_forces = r.get_v3_vec()?;
        for (what, v) in [
            ("position array", &pos),
            ("velocity array", &vel),
            ("force array", &forces),
            ("fast-force array", &forces_fast),
            ("mesh-force array", &mesh_forces),
        ] {
            if v.len() != n {
                return Err(CheckpointError::Mismatch { what });
            }
        }
        let neighbours = match r.get_u8()? {
            0 => None,
            1 => {
                let n_pairs = r.get_len(8)?;
                let mut pairs = Vec::with_capacity(n_pairs);
                for _ in 0..n_pairs {
                    pairs.push((r.get_u32()?, r.get_u32()?));
                }
                if pairs
                    .iter()
                    .any(|&(i, j)| i as usize >= n || j as usize >= n)
                {
                    return Err(CheckpointError::Mismatch {
                        what: "neighbour pair index",
                    });
                }
                let cutoff = r.get_f64()?;
                let list_skin = r.get_f64()?;
                let box_l = [r.get_f64()?, r.get_f64()?, r.get_f64()?];
                let ref_pos = r.get_v3_vec()?;
                if ref_pos.len() != n {
                    return Err(CheckpointError::Mismatch {
                        what: "neighbour reference positions",
                    });
                }
                Some(VerletList::from_parts(
                    pairs, cutoff, list_skin, box_l, ref_pos,
                ))
            }
            t => {
                return Err(CheckpointError::Codec(CodecError::BadTag {
                    at: bytes.len() - r.remaining() - 1,
                    want: 1,
                    got: u64::from(t),
                }))
            }
        };
        if !r.is_empty() {
            return Err(CheckpointError::Codec(CodecError::BadLength {
                at: bytes.len() - r.remaining(),
                len: r.remaining() as u64,
            }));
        }
        self.system.pos = pos;
        self.system.vel = vel;
        self.forces = forces;
        self.forces_fast = forces_fast;
        self.mesh_forces = mesh_forces;
        self.neighbours = neighbours;
        self.dt = dt;
        self.skin = skin;
        self.mesh_interval = mesh_interval;
        self.time = time;
        self.step_count = step_count;
        self.cached_mesh_energy = cached_mesh_energy;
        self.mesh_weight = mesh_weight;
        self.energies = energies;
        self.exact_short_range = exact_short_range;
        self.last_error = None;
        Ok(())
    }

    /// Current energies (uses cached potential terms from the last force
    /// evaluation, which correspond to the current positions).
    pub fn energy_record(&self) -> EnergyRecord {
        let kinetic = self.system.kinetic_energy();
        let potential = self.energies.lj + self.energies.coulomb + self.energies.bonded;
        EnergyRecord {
            time: self.time,
            kinetic,
            lj: self.energies.lj,
            coulomb: self.energies.coulomb,
            bonded: self.energies.bonded,
            potential,
            total: kinetic + potential,
            temperature: self.system.temperature(),
        }
    }

    /// Run `steps` steps, sampling every `sample_every` (plus t = 0).
    /// Stops early (with the records gathered so far) if a numerical
    /// fault latches into [`NveSim::last_error`].
    pub fn run(&mut self, steps: usize, sample_every: usize) -> Vec<EnergyRecord> {
        let mut records = vec![self.energy_record()];
        for s in 1..=steps {
            self.step();
            if self.last_error.is_some() {
                break;
            }
            if s % sample_every.max(1) == 0 {
                records.push(self.energy_record());
            }
        }
        records
    }
}

/// FNV-1a over the immutable topology (masses, charges, LJ parameters,
/// box, exclusions) — the guard that a checkpoint is only restored into
/// the system it was taken from.
fn topology_fingerprint(sys: &MdSystem) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &m in &sys.mass {
        h = mix(h, m.to_bits());
    }
    for &q in &sys.q {
        h = mix(h, q.to_bits());
    }
    for l in &sys.lj {
        h = mix(h, l.sigma.to_bits());
        h = mix(h, l.epsilon.to_bits());
    }
    for b in sys.box_l {
        h = mix(h, b.to_bits());
    }
    for &(i, j) in &sys.exclusions {
        h = mix(h, i as u64);
        h = mix(h, j as u64);
    }
    h
}

/// Classify a non-finite short-range result, if any.
fn short_range_fault(e: &nonbond::ShortRangeEnergy, forces: &[V3]) -> Option<TmeRecoverableError> {
    if !e.lj.is_finite() {
        return Some(TmeRecoverableError::NonFiniteEnergy { value: e.lj });
    }
    if !e.coulomb.is_finite() {
        return Some(TmeRecoverableError::NonFiniteEnergy { value: e.coulomb });
    }
    forces
        .iter()
        .position(|f| !f.iter().all(|c| c.is_finite()))
        .map(|atom| TmeRecoverableError::NonFiniteForce { atom })
}

/// Least-squares drift (kJ/mol/ps) of the total energy across records —
/// the quantity Fig. 4 shows to be statistically zero for SPME and TME.
pub fn energy_drift(records: &[EnergyRecord]) -> f64 {
    let n = records.len() as f64;
    if records.len() < 2 {
        return 0.0;
    }
    let mean_t: f64 = records.iter().map(|r| r.time).sum::<f64>() / n;
    let mean_e: f64 = records.iter().map(|r| r.total).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for r in records {
        num += (r.time - mean_t) * (r.total - mean_e);
        den += (r.time - mean_t) * (r.time - mean_t);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CutoffOnly, SpmeBackend, SpmeParams};
    use crate::water::{thermalize, water_box};
    use tme_num::vec3;
    use tme_reference::ewald::EwaldParams;

    fn small_water() -> MdSystem {
        // 125 waters → L ≈ 1.56 nm, so cutoffs up to 0.75 nm respect the
        // half-box minimum-image bound the neighbour lists enforce.
        let mut s = water_box(125, 4);
        thermalize(&mut s, 300.0, 5);
        s
    }

    #[test]
    fn constraints_hold_over_many_steps() {
        let sys = small_water();
        let solver = CutoffOnly { r_cut: 0.75 };
        let mut sim = NveSim::new(sys, &solver, 0.001, 0.75);
        for _ in 0..50 {
            sim.step();
        }
        let geom = SettleGeom::tip3p();
        for w in &sim.system.waters {
            let d = vec3::norm(vec3::sub(sim.system.pos[w.o], sim.system.pos[w.h1]));
            assert!((d - geom.d_oh).abs() < 1e-8, "O-H drifted to {d}");
            let dh = vec3::norm(vec3::sub(sim.system.pos[w.h1], sim.system.pos[w.h2]));
            assert!((dh - geom.d_hh).abs() < 1e-8, "H-H drifted to {dh}");
        }
    }

    #[test]
    fn momentum_conserved() {
        let sys = small_water();
        let solver = CutoffOnly { r_cut: 0.75 };
        let mut sim = NveSim::new(sys, &solver, 0.001, 0.75);
        let p0 = sim.system.momentum();
        for _ in 0..20 {
            sim.step();
        }
        let p1 = sim.system.momentum();
        for a in 0..3 {
            assert!((p1[a] - p0[a]).abs() < 1e-6, "{p0:?} vs {p1:?}");
        }
    }

    #[test]
    fn energy_conserved_with_spme() {
        let sys = small_water();
        let r_cut = 0.75;
        let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
        let spme = SpmeBackend::new(
            SpmeParams {
                n: [16; 3],
                p: 6,
                alpha,
                r_cut,
            },
            sys.box_l,
        )
        .unwrap();
        let mut sim = NveSim::new(sys, &spme, 0.001, r_cut);
        let records = sim.run(100, 10);
        let e0 = records[0].total;
        for r in &records {
            // 0.1 ps of 1 fs NVE: total energy stays within a small
            // fraction of kT per molecule.
            assert!(
                (r.total - e0).abs() < 0.05 * records[0].kinetic.abs().max(1.0),
                "t={}: {} vs {}",
                r.time,
                r.total,
                e0
            );
        }
    }

    #[test]
    fn drift_estimator_on_synthetic_data() {
        let records: Vec<EnergyRecord> = (0..10)
            .map(|i| EnergyRecord {
                time: i as f64,
                total: 5.0 + 0.25 * i as f64,
                ..Default::default()
            })
            .collect();
        assert!((energy_drift(&records) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multiple_time_stepping_stays_conservative() {
        // Mesh every other step (the Anton policy): total energy must stay
        // close to the every-step result over a short run.
        let sys = small_water();
        let r_cut = 0.75;
        let alpha = tme_reference::ewald::EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
        let spme = SpmeBackend::new(
            SpmeParams {
                n: [16; 3],
                p: 6,
                alpha,
                r_cut,
            },
            sys.box_l,
        )
        .unwrap();
        let run = |interval: usize| {
            let mut sim = NveSim::new(small_water(), &spme, 0.001, r_cut);
            sim.mesh_interval = interval;
            sim.run(60, 10)
        };
        let every = run(1);
        let alternate = run(2);
        let drift1 = energy_drift(&every).abs();
        let drift2 = energy_drift(&alternate).abs();
        let kinetic = every[0].kinetic.abs().max(1.0);
        // Both conserve to well under a percent of the kinetic energy per
        // ps; MTS may be modestly worse but not catastrophically.
        assert!(drift1 * 0.06 < 0.02 * kinetic, "every-step drift {drift1}");
        assert!(
            drift2 * 0.06 < 0.04 * kinetic,
            "alternate-step drift {drift2}"
        );
        // And the trajectories stay energetically close.
        let d_total = (every.last().unwrap().total - alternate.last().unwrap().total).abs();
        assert!(d_total < 0.02 * kinetic, "MTS diverged by {d_total} kJ/mol");
    }

    #[test]
    fn initial_velocities_satisfy_constraints() {
        let sys = small_water();
        let solver = CutoffOnly { r_cut: 0.75 };
        let sim = NveSim::new(sys, &solver, 0.001, 0.75);
        for w in &sim.system.waters {
            let e = vec3::sub(sim.system.pos[w.o], sim.system.pos[w.h1]);
            let rate = vec3::dot(vec3::sub(sim.system.vel[w.o], sim.system.vel[w.h1]), e);
            assert!(rate.abs() < 1e-10, "bond rate {rate}");
        }
    }
}
