//! TIP3P water-box builders.
//!
//! The paper's systems are cubic boxes of TIP3P water (Table 1: 32,773
//! molecules, L = 9.9727 nm). We generate geometry-similar boxes of any
//! size: molecules on a perturbed simple-cubic lattice with random rigid
//! orientations, then Maxwell–Boltzmann velocities. A short steepest-
//! descent relaxation of overlapping contacts is available for NVE starts.

use crate::topology::{LjParams, MdSystem, WaterMol};
use crate::units::tip3p;
use tme_num::rng::SplitMix64;
use tme_num::vec3::{self, V3};

/// A rigid TIP3P template centred on the oxygen, arbitrary orientation.
fn water_template(rng: &mut SplitMix64) -> [V3; 3] {
    // Random rotation from a random unit quaternion.
    let q = random_unit_quaternion(rng);
    let half = tip3p::ANGLE_HOH_DEG.to_radians() / 2.0;
    let o = [0.0, 0.0, 0.0];
    let h1 = [tip3p::R_OH * half.sin(), 0.0, tip3p::R_OH * half.cos()];
    let h2 = [-tip3p::R_OH * half.sin(), 0.0, tip3p::R_OH * half.cos()];
    [rotate(q, o), rotate(q, h1), rotate(q, h2)]
}

fn random_unit_quaternion(rng: &mut SplitMix64) -> [f64; 4] {
    loop {
        let q = [
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        ];
        let n2: f64 = q.iter().map(|x| x * x).sum();
        if n2 > 1e-4 && n2 <= 1.0 {
            let n = n2.sqrt();
            return [q[0] / n, q[1] / n, q[2] / n, q[3] / n];
        }
    }
}

fn rotate(q: [f64; 4], v: V3) -> V3 {
    // v' = v + 2 w (u × v) + 2 u × (u × v), q = (w, u).
    let u = [q[1], q[2], q[3]];
    let w = q[0];
    let uv = vec3::cross(u, v);
    let uuv = vec3::cross(u, uv);
    [
        v[0] + 2.0 * (w * uv[0] + uuv[0]),
        v[1] + 2.0 * (w * uv[1] + uuv[1]),
        v[2] + 2.0 * (w * uv[2] + uuv[2]),
    ]
}

/// Build a cubic box of `n_waters` TIP3P molecules at the standard density.
///
/// Molecules sit on a simple-cubic lattice (jittered ±5% of a cell) with
/// random orientations; `seed` makes the construction reproducible.
///
/// # Example
///
/// ```
/// let sys = tme_md::water::water_box(27, 42);
/// assert_eq!(sys.waters.len(), 27);
/// assert_eq!(sys.len(), 81);
/// assert!(sys.q.iter().sum::<f64>().abs() < 1e-10); // neutral
/// ```
pub fn water_box(n_waters: usize, seed: u64) -> MdSystem {
    let volume = n_waters as f64 / tip3p::NUMBER_DENSITY;
    let box_len = volume.cbrt();
    water_box_in(n_waters, [box_len; 3], seed)
}

/// Build `n_waters` TIP3P molecules in a given box (density implied).
pub fn water_box_in(n_waters: usize, box_l: V3, seed: u64) -> MdSystem {
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Lattice fine enough to hold all molecules.
    let mut cells = 1usize;
    while cells * cells * cells < n_waters {
        cells += 1;
    }
    let spacing = [
        box_l[0] / cells as f64,
        box_l[1] / cells as f64,
        box_l[2] / cells as f64,
    ];
    let n_atoms = 3 * n_waters;
    let mut sys = MdSystem {
        pos: Vec::with_capacity(n_atoms),
        vel: vec![[0.0; 3]; n_atoms],
        mass: Vec::with_capacity(n_atoms),
        q: Vec::with_capacity(n_atoms),
        lj: Vec::with_capacity(n_atoms),
        box_l,
        waters: Vec::with_capacity(n_waters),
        exclusions: Vec::with_capacity(3 * n_waters),
        bonded: Default::default(),
    };
    let mut placed = 0;
    'fill: for ix in 0..cells {
        for iy in 0..cells {
            for iz in 0..cells {
                if placed == n_waters {
                    break 'fill;
                }
                let jitter = 0.05;
                let centre = [
                    (ix as f64 + 0.5 + rng.gen_range(-jitter..jitter)) * spacing[0],
                    (iy as f64 + 0.5 + rng.gen_range(-jitter..jitter)) * spacing[1],
                    (iz as f64 + 0.5 + rng.gen_range(-jitter..jitter)) * spacing[2],
                ];
                let tpl = water_template(&mut rng);
                let base = sys.pos.len();
                for (k, site) in tpl.iter().enumerate() {
                    // Positions are NOT wrapped: molecules stay whole so
                    // the rigid constraints see true distances. All pair
                    // and mesh code minimum-images / wraps internally.
                    sys.pos.push(vec3::add(centre, *site));
                    match k {
                        0 => {
                            sys.mass.push(tip3p::M_O);
                            sys.q.push(tip3p::Q_O);
                            sys.lj.push(LjParams {
                                sigma: tip3p::SIGMA_O,
                                epsilon: tip3p::EPS_O,
                            });
                        }
                        _ => {
                            sys.mass.push(tip3p::M_H);
                            sys.q.push(tip3p::Q_H);
                            sys.lj.push(LjParams::default());
                        }
                    }
                }
                sys.waters.push(WaterMol {
                    o: base,
                    h1: base + 1,
                    h2: base + 2,
                });
                sys.exclusions.push((base, base + 1));
                sys.exclusions.push((base, base + 2));
                sys.exclusions.push((base + 1, base + 2));
                placed += 1;
            }
        }
    }
    assert_eq!(placed, n_waters, "lattice too small for requested waters");
    sys.finalize();
    sys
}

/// Draw Maxwell–Boltzmann velocities at temperature `t_kelvin` and remove
/// the centre-of-mass drift.
pub fn thermalize(sys: &mut MdSystem, t_kelvin: f64, seed: u64) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    for (m, v) in sys.mass.iter().zip(sys.vel.iter_mut()) {
        let sigma = (crate::units::KB * t_kelvin / m).sqrt();
        for c in v.iter_mut() {
            *c = sigma * rng.normal();
        }
    }
    sys.remove_com_velocity();
}

/// Relax close contacts by constrained steepest descent on the
/// short-range (LJ + erfc-Coulomb) energy: move along the force with a
/// capped step, re-impose the rigid geometry with SETTLE, repeat.
///
/// A lattice-built box has overlapping hydrogens between neighbouring
/// molecules; a few hundred descent steps bring it close enough to a
/// liquid-like local minimum for clean NVE starts (the paper's systems
/// are GROMACS-equilibrated).
pub fn relax(sys: &mut MdSystem, steps: usize, r_cut: f64) -> f64 {
    use crate::constraints::{settle_all_positions, SettleGeom};
    use crate::neighbors::VerletList;
    use crate::nonbond;
    let geom = SettleGeom::tip3p();
    let alpha = 3.0; // any splitting; only the short-range part is relaxed
    let max_step = 0.005; // nm per iteration
    let skin = 0.1;
    // Relaxation only needs local contacts; clamp to what the box allows.
    let min_edge = sys.box_l.iter().cloned().fold(f64::INFINITY, f64::min);
    let r_cut = r_cut.min(min_edge / 2.0 - skin).max(0.3);
    let table = tme_num::table::PairKernelTable::new(alpha, r_cut);
    let mut energy = f64::INFINITY;
    let mut list: Option<VerletList> = None;
    for _ in 0..steps {
        // take()/insert() keeps "a list exists" structural (lint rule L2).
        let current = match list.take() {
            Some(l) if !l.needs_rebuild(&sys.pos) => list.insert(l),
            _ => list.insert(VerletList::build(
                &sys.pos,
                sys.box_l,
                r_cut,
                skin,
                |i, j| sys.is_excluded(i, j),
            )),
        };
        let mut forces = vec![[0.0; 3]; sys.len()];
        let e = nonbond::short_range_verlet(sys, current, &table, &mut forces);
        let e_bonded = sys.bonded.evaluate(&sys.pos, sys.box_l, &mut forces);
        energy = e.lj + e.coulomb + e_bonded;
        // Cap the largest displacement at max_step.
        let fmax = forces
            .iter()
            .map(|f| vec3::norm(*f))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let gamma = max_step / fmax;
        let old = sys.pos.clone();
        for (r, f) in sys.pos.iter_mut().zip(&forces) {
            r[0] += gamma * f[0];
            r[1] += gamma * f[1];
            r[2] += gamma * f[2];
        }
        settle_all_positions(&geom, &sys.waters, &old, &mut sys.pos);
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_has_right_counts_and_charges() {
        let s = water_box(64, 7);
        assert_eq!(s.len(), 192);
        assert_eq!(s.waters.len(), 64);
        assert_eq!(s.exclusions.len(), 192);
        let qtot: f64 = s.q.iter().sum();
        assert!(qtot.abs() < 1e-10);
    }

    #[test]
    fn density_matches_request() {
        let s = water_box(216, 42);
        let v = s.box_l[0] * s.box_l[1] * s.box_l[2];
        let density = 216.0 / v;
        assert!((density - tip3p::NUMBER_DENSITY).abs() < 0.01 * tip3p::NUMBER_DENSITY);
    }

    #[test]
    fn geometry_is_rigid_tip3p() {
        let s = water_box(27, 3);
        for w in &s.waters {
            let d1 = vec3::norm(vec3::min_image(s.pos[w.o], s.pos[w.h1], s.box_l));
            let d2 = vec3::norm(vec3::min_image(s.pos[w.o], s.pos[w.h2], s.box_l));
            let dh = vec3::norm(vec3::min_image(s.pos[w.h1], s.pos[w.h2], s.box_l));
            assert!((d1 - tip3p::R_OH).abs() < 1e-12);
            assert!((d2 - tip3p::R_OH).abs() < 1e-12);
            assert!((dh - tip3p::r_hh()).abs() < 1e-12);
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = water_box(27, 5);
        let b = water_box(27, 5);
        assert_eq!(a.pos, b.pos);
        let c = water_box(27, 6);
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn thermalized_temperature_near_target() {
        let mut s = water_box(216, 1);
        thermalize(&mut s, 300.0, 2);
        // thermalize draws *unconstrained* Maxwell velocities (the NVE
        // setup later projects them onto the constraint manifold), so
        // compare against the unconstrained equipartition estimate.
        let t = 2.0 * s.kinetic_energy() / (3.0 * s.len() as f64 * crate::units::KB);
        assert!((t - 300.0).abs() < 25.0, "T = {t}");
        let p = s.momentum();
        assert!(p.iter().all(|c| c.abs() < 1e-9), "{p:?}");
    }

    #[test]
    fn relaxation_reduces_energy_and_keeps_rigidity() {
        let mut s = water_box(64, 21);
        let before = relax(&mut s, 1, 0.8); // energy of the raw lattice
        let after = relax(&mut s, 60, 0.8);
        assert!(
            after < before,
            "relaxation did not lower energy: {before} -> {after}"
        );
        for w in &s.waters {
            let d = vec3::norm(vec3::sub(s.pos[w.o], s.pos[w.h1]));
            assert!((d - tip3p::R_OH).abs() < 1e-8, "rigidity lost: {d}");
        }
    }

    #[test]
    fn molecules_are_whole() {
        // No water may straddle the box: raw (unwrapped) intra-molecular
        // distances must equal the rigid geometry without minimum-imaging.
        let s = water_box(125, 11);
        for w in &s.waters {
            let d = vec3::norm(vec3::sub(s.pos[w.o], s.pos[w.h1]));
            assert!((d - tip3p::R_OH).abs() < 1e-12);
        }
        // And oxygens stay within one molecule radius of the box.
        for w in &s.waters {
            for a in 0..3 {
                assert!(s.pos[w.o][a] > -0.2 && s.pos[w.o][a] < s.box_l[a] + 0.2);
            }
        }
    }
}
