//! Flexible solutes: build charged bead chains ("protein surrogates") and
//! merge them into a water box — the inhomogeneous workload class the
//! paper's production system represents (a 480-residue protein + ions +
//! water, §V.A).

use crate::bonded::{Angle, Bond};
use crate::topology::{LjParams, MdSystem};
use tme_num::vec3::{self, V3};

/// Parameters of a simple bead-chain solute.
#[derive(Clone, Copy, Debug)]
pub struct ChainParams {
    /// Number of beads.
    pub beads: usize,
    /// Equilibrium bond length (nm).
    pub bond_length: f64,
    /// Bond force constant (kJ/mol/nm²).
    pub bond_k: f64,
    /// Equilibrium angle (radians) and force constant (kJ/mol/rad²).
    pub angle_theta0: f64,
    pub angle_k: f64,
    /// Alternating bead charges ±q (e); the chain stays neutral for even
    /// bead counts.
    pub charge: f64,
    /// Bead mass (u) and LJ parameters.
    pub mass: f64,
    pub lj: LjParams,
}

impl Default for ChainParams {
    fn default() -> Self {
        Self {
            beads: 20,
            bond_length: 0.15,
            bond_k: 30_000.0,
            angle_theta0: 2.0,
            angle_k: 300.0,
            charge: 0.5,
            mass: 14.0,
            lj: LjParams {
                sigma: 0.33,
                epsilon: 0.4,
            },
        }
    }
}

/// Append a helical bead chain to a system, with bonds, angles,
/// alternating charges and 1–2/1–3 exclusions. Returns the atom index
/// range of the new chain.
pub fn add_chain(sys: &mut MdSystem, params: &ChainParams, centre: V3) -> std::ops::Range<usize> {
    assert!(params.beads >= 2);
    let base = sys.len();
    // Helix with the requested bond length: pitch + radius chosen so
    // consecutive beads sit `bond_length` apart.
    let turn = 0.6f64; // radians per bead
    let radius = 0.25;
    let chord = 2.0 * radius * (turn / 2.0).sin();
    let dz = (params.bond_length * params.bond_length - chord * chord)
        .max(1e-6)
        .sqrt();
    for i in 0..params.beads {
        let phi = i as f64 * turn;
        sys.pos.push(vec3::add(
            centre,
            [radius * phi.cos(), radius * phi.sin(), dz * i as f64],
        ));
        sys.vel.push([0.0; 3]);
        sys.mass.push(params.mass);
        sys.q.push(if i % 2 == 0 {
            params.charge
        } else {
            -params.charge
        });
        sys.lj.push(params.lj);
    }
    for i in 0..params.beads - 1 {
        sys.bonded.bonds.push(Bond {
            i: base + i,
            j: base + i + 1,
            r0: params.bond_length,
            k: params.bond_k,
        });
        sys.exclusions.push((base + i, base + i + 1));
    }
    for i in 0..params.beads.saturating_sub(2) {
        sys.bonded.angles.push(Angle {
            i: base + i,
            j: base + i + 1,
            k: base + i + 2,
            theta0: params.angle_theta0,
            kf: params.angle_k,
        });
        sys.exclusions.push((base + i, base + i + 2));
    }
    sys.finalize();
    base..sys.len()
}

/// Remove every water molecule whose oxygen lies within `r_min` of any
/// atom in `solute` (minimum image) — the carve-out step of solvation.
/// Solute atoms must come *after* all waters (as [`add_chain`] arranges);
/// their bonded/exclusion indices are remapped to the compacted layout.
pub fn remove_overlapping_waters(sys: &mut MdSystem, solute: std::ops::Range<usize>, r_min: f64) {
    let r2 = r_min * r_min;
    let keep_water: Vec<bool> = sys
        .waters
        .iter()
        .map(|w| {
            solute
                .clone()
                .all(|s| vec3::norm_sqr(vec3::min_image(sys.pos[w.o], sys.pos[s], sys.box_l)) > r2)
        })
        .collect();
    // Old-index → new-index map (waters first, then the solute block).
    let mut map = vec![usize::MAX; sys.len()];
    let mut next = 0usize;
    for (w, keep) in sys.waters.iter().zip(&keep_water) {
        if *keep {
            for idx in [w.o, w.h1, w.h2] {
                map[idx] = next;
                next += 1;
            }
        }
    }
    for s in solute.clone() {
        map[s] = next;
        next += 1;
    }
    let remap = |i: usize| map[i];
    let keep_atom = |i: usize| map[i] != usize::MAX;
    macro_rules! compact {
        ($field:ident) => {{
            let mut new_field = Vec::with_capacity(next);
            for (i, v) in sys.$field.iter().enumerate() {
                if keep_atom(i) {
                    new_field.push(v.clone());
                }
            }
            // `map` is order-preserving, so positions line up already.
            sys.$field = new_field;
        }};
    }
    compact!(pos);
    compact!(vel);
    compact!(mass);
    compact!(q);
    compact!(lj);
    sys.waters = sys
        .waters
        .iter()
        .zip(&keep_water)
        .filter(|(_, k)| **k)
        .map(|(w, _)| crate::topology::WaterMol {
            o: remap(w.o),
            h1: remap(w.h1),
            h2: remap(w.h2),
        })
        .collect();
    sys.exclusions = sys
        .exclusions
        .iter()
        .filter(|(i, j)| keep_atom(*i) && keep_atom(*j))
        .map(|&(i, j)| (remap(i), remap(j)))
        .collect();
    for b in &mut sys.bonded.bonds {
        b.i = remap(b.i);
        b.j = remap(b.j);
    }
    for a in &mut sys.bonded.angles {
        a.i = remap(a.i);
        a.j = remap(a.j);
        a.k = remap(a.k);
    }
    sys.finalize();
}

/// Full solvation workflow: insert a chain into a water box, carve out
/// overlapping waters and relax the contacts. Returns the chain's atom
/// range in the final layout.
pub fn solvate_chain(
    sys: &mut MdSystem,
    params: &ChainParams,
    centre: V3,
    relax_steps: usize,
) -> std::ops::Range<usize> {
    let range = add_chain(sys, params, centre);
    remove_overlapping_waters(sys, range.clone(), 0.30);
    let n_solute = range.len();
    let start = sys.len() - n_solute;
    crate::water::relax(sys, relax_steps, 0.8);
    start..sys.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WolfScreened;
    use crate::nve::NveSim;
    use crate::water::{thermalize, water_box};

    fn chain_in_water() -> MdSystem {
        let mut sys = water_box(64, 7);
        let centre = [sys.box_l[0] * 0.5, sys.box_l[1] * 0.5, 0.2];
        // Uncharged chain: this test isolates the *bonded* force
        // consistency; a charged solute under plain cutoff electrostatics
        // would add truncation noise unrelated to the bonded terms (the
        // examples run charged chains with a proper mesh solver).
        let range = solvate_chain(
            &mut sys,
            &ChainParams {
                beads: 8,
                charge: 0.0,
                ..Default::default()
            },
            centre,
            120,
        );
        assert_eq!(range.len(), 8);
        assert_eq!(range.end, sys.len());
        sys
    }

    #[test]
    fn chain_geometry_matches_bond_length() {
        let mut sys = water_box(8, 1);
        let p = ChainParams::default();
        let range = add_chain(&mut sys, &p, [1.0, 1.0, 0.1]);
        for i in range.start..range.end - 1 {
            let d = vec3::norm(vec3::sub(sys.pos[i], sys.pos[i + 1]));
            assert!((d - p.bond_length).abs() < 1e-9, "bond {i}: {d}");
        }
    }

    #[test]
    fn chain_is_neutral_for_even_beads() {
        let mut sys = water_box(8, 2);
        add_chain(
            &mut sys,
            &ChainParams {
                beads: 10,
                ..Default::default()
            },
            [1.0, 1.0, 0.1],
        );
        assert!(sys.q.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn exclusions_cover_12_and_13() {
        let mut sys = water_box(4, 3);
        let r = add_chain(
            &mut sys,
            &ChainParams {
                beads: 5,
                ..Default::default()
            },
            [0.8, 0.8, 0.1],
        );
        let b = r.start;
        assert!(sys.is_excluded(b, b + 1));
        assert!(sys.is_excluded(b, b + 2));
        assert!(!sys.is_excluded(b, b + 3));
    }

    #[test]
    fn carving_removes_overlaps_and_remaps() {
        let mut sys = water_box(64, 9);
        let n_water_atoms = sys.len();
        let centre = [sys.box_l[0] * 0.5, sys.box_l[1] * 0.5, 0.2];
        let range = add_chain(
            &mut sys,
            &ChainParams {
                beads: 6,
                ..Default::default()
            },
            centre,
        );
        remove_overlapping_waters(&mut sys, range, 0.35);
        assert!(sys.len() < n_water_atoms + 6, "no waters were carved out");
        // Layout invariants after remap.
        assert_eq!(sys.len(), 3 * sys.waters.len() + 6);
        for w in &sys.waters {
            let d = vec3::norm(vec3::sub(sys.pos[w.o], sys.pos[w.h1]));
            assert!((d - crate::units::tip3p::R_OH).abs() < 1e-9);
        }
        for b in &sys.bonded.bonds {
            assert!(b.i < sys.len() && b.j < sys.len());
            let d = vec3::norm(vec3::sub(sys.pos[b.i], sys.pos[b.j]));
            assert!((d - 0.15).abs() < 1e-6, "bond length {d} after remap");
        }
        // No water oxygen within the carve radius of any chain bead.
        let chain_start = sys.len() - 6;
        for w in &sys.waters {
            for s in chain_start..sys.len() {
                let r = vec3::norm(vec3::min_image(sys.pos[w.o], sys.pos[s], sys.box_l));
                assert!(r > 0.35, "water at {r} from bead");
            }
        }
    }

    /// Flexible chain + rigid water NVE: energy conserved with bonded
    /// forces in the loop (cross-checks the bonded gradients dynamically).
    #[test]
    fn flexible_chain_nve_conserves_energy() {
        let mut sys = chain_in_water();
        thermalize(&mut sys, 250.0, 4);
        // Screened (Wolf-style) electrostatics: conservative under a
        // cutoff, so total-energy drift isolates the bonded forces.
        let solver = WolfScreened::for_cutoff(0.6, 1e-3);
        // Short time step: the stiff bonds oscillate fast. (64 waters →
        // L ≈ 1.24 nm, so the cutoff must stay under the 0.62 nm half-box.)
        let mut sim = NveSim::new(sys, &solver, 0.0005, 0.6);
        let records = sim.run(200, 20);
        let e0 = records[0].total;
        let kinetic = records[0].kinetic.abs().max(1.0);
        for r in &records {
            assert!(
                (r.total - e0).abs() < 0.05 * kinetic,
                "t={}: {} vs {e0}",
                r.time,
                r.total
            );
        }
        // Bonded energy is alive (the chain vibrates).
        assert!(records.iter().any(|r| r.bonded > 0.01));
    }
}
