//! The long-range backend layer: one plan/execute interface over every
//! solver in the workspace (DESIGN.md §14).
//!
//! Planning turns a [`BackendParams`] value plus a box into an immutable
//! [`LongRangeBackend`] plan (`Arc`-shared, `Send + Sync`); execution
//! threads an opaque per-backend [`BackendWorkspace`] through
//! [`LongRangeBackend::compute_into`]. The contract every backend honours:
//!
//! * **Zero-allocation steady state** — after the first call on a given
//!   atom count, `compute_into`/`mesh_into` perform no heap allocation
//!   (`cargo xtask analyze`, rule a1).
//! * **No panics on the execute path** — bad inputs or a workspace built
//!   for a different plan come back as [`TmeRecoverableError`] (rule a2);
//!   configuration errors are rejected at plan time as
//!   [`BackendConfigError`].
//! * **Bitwise determinism** — results are independent of the workspace
//!   pool's thread count (fixed-partition reductions, serial lattice and
//!   cascade sums).
//! * **Stable fingerprint** — [`BackendParams::fingerprint`] hashes the
//!   backend kind, every physical parameter and the box edge bits; equal
//!   fingerprints mean interchangeable plans (the serve plan cache keys
//!   on it).
//!
//! Solvers behind the interface: the production TME pipeline, B-spline
//! SPME, PSWF-window SPME, the direct Ewald oracle, the MSM baseline, a
//! quasi-2D slab geometry (image charges + Yeh–Berkowitz dipole term on a
//! z-tripled box), and the two mesh-free cutoff models used by ablation
//! runs.

use std::sync::Arc;

use tme_core::{
    Msm, MsmWorkspace, Tme, TmeConfigError, TmeParams, TmeRecoverableError, TmeStats, TmeWorkspace,
};
use tme_mesh::model::{CoulombResult, CoulombSystem};
use tme_mesh::pairwise::{self, PairwiseScratch};
use tme_mesh::window::PswfWindow;
use tme_num::vec3::V3;
use tme_num::Pool;
use tme_reference::{Ewald, EwaldParams, EwaldScratch, Spme, SpmeScratch};

/// Discriminant of a long-range backend. The values double as the wire
/// tags of the serve protocol's backend field — [`BackendKind::Cutoff`]
/// covers the MD-harness-local cutoff models ([`CutoffOnly`],
/// [`WolfScreened`]) and is deliberately *not* decodable from the wire:
/// a served plan always carries a real long-range solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum BackendKind {
    /// Tensor-structured multilevel Ewald (the paper's pipeline).
    Tme = 1,
    /// Smooth particle-mesh Ewald with the B-spline window.
    Spme = 2,
    /// SPME with the prolate-spheroidal (PSWF) window.
    SpmePswf = 3,
    /// Direct Ewald summation (the reference oracle).
    Ewald = 4,
    /// Multilevel summation with direct (untensorised) convolutions.
    Msm = 5,
    /// Quasi-2D slab: image charges + Yeh–Berkowitz correction.
    Slab = 6,
    /// Mesh-free cutoff models (not wire-encodable).
    Cutoff = 7,
}

impl BackendKind {
    /// Wire tag of this kind (the `#[repr(u8)]` discriminant).
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Decode a wire tag. Returns `None` for unknown tags *and* for
    /// [`BackendKind::Cutoff`], which is not a servable backend.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(Self::Tme),
            2 => Some(Self::Spme),
            3 => Some(Self::SpmePswf),
            4 => Some(Self::Ewald),
            5 => Some(Self::Msm),
            6 => Some(Self::Slab),
            _ => None,
        }
    }

    /// Short human-readable name (also used in bench reports).
    pub fn name(self) -> &'static str {
        match self {
            Self::Tme => "TME",
            Self::Spme => "SPME",
            Self::SpmePswf => "SPME-PSWF",
            Self::Ewald => "Ewald",
            Self::Msm => "MSM",
            Self::Slab => "slab",
            Self::Cutoff => "cutoff",
        }
    }
}

/// Parameters of a B-spline SPME plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpmeParams {
    /// Grid numbers per axis; powers of two (our FFT).
    pub n: [usize; 3],
    /// B-spline order; even, `2..=12`, ≤ the smallest grid number.
    pub p: usize,
    /// Ewald splitting parameter α (nm⁻¹).
    pub alpha: f64,
    /// Real-space cutoff (nm), ≤ half the smallest box edge.
    pub r_cut: f64,
}

/// Parameters of a PSWF-window SPME plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PswfParams {
    /// Grid numbers per axis; powers of two.
    pub n: [usize; 3],
    /// Window support in grid points; even, `2..=12`, ≤ min grid number.
    pub p: usize,
    /// Ewald splitting parameter α (nm⁻¹).
    pub alpha: f64,
    /// Real-space cutoff (nm).
    pub r_cut: f64,
    /// PSWF bandwidth c, or `0.0` for the tuned default
    /// [`PswfWindow::for_order`] (c = 1.1·π·p/2). Explicit values must
    /// keep the band edge at or above Nyquist (c ≥ π·p/2): below it the
    /// deconvolution divides by the window's oscillating out-of-band
    /// leakage floor and the forces are garbage.
    pub shape: f64,
}

/// Parameters of a quasi-2D slab plan. The real box is periodic in x/y
/// and aperiodic in z (atoms in `0 ≤ z ≤ L_z`); the plan works on an
/// extended box with `L_z` tripled (vacuum gap) carrying up to one image
/// layer per wall plus the Yeh–Berkowitz dipole correction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlabParams {
    /// Grid numbers of the **extended** box (z axis spans `3·L_z`);
    /// powers of two.
    pub n: [usize; 3],
    /// B-spline order of the extended-box SPME; even, `2..=12`.
    pub p: usize,
    /// Ewald splitting parameter α (nm⁻¹).
    pub alpha: f64,
    /// Real-space cutoff (nm), ≤ half the smallest **real** edge (the
    /// short-range reduction runs on the real box; since the extended
    /// box only grows z, this also satisfies its minimum-image bound).
    pub r_cut: f64,
    /// Image-charge reflection coefficient of the `z = L_z` wall
    /// (`0` = vacuum, `−1` = ideal conductor); `|γ| ≤ 1`.
    pub gamma_top: f64,
    /// Reflection coefficient of the `z = 0` wall.
    pub gamma_bot: f64,
    /// Image layers per wall: `0` (plain Yeh–Berkowitz vacuum slab) or
    /// `1` (first-order image-charge method).
    pub n_images: u32,
}

/// Backend-agnostic plan parameters — everything [`plan_backend`] needs
/// besides the box. One variant per servable [`BackendKind`]. Two plans
/// are interchangeable iff their [`Self::fingerprint`]s (which also mix
/// in the box) are equal; structural `==` is only field equality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BackendParams {
    /// TME with the full multilevel parameter set.
    Tme(TmeParams),
    /// B-spline SPME.
    Spme(SpmeParams),
    /// PSWF-window SPME.
    SpmePswf(PswfParams),
    /// Direct Ewald summation.
    Ewald(EwaldParams),
    /// MSM baseline — same parameter shape as the TME (grid, order,
    /// levels, g_c; `m_gaussians` is ignored, the kernel is exact).
    Msm(TmeParams),
    /// Quasi-2D slab geometry.
    Slab(SlabParams),
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a round over the little-endian bytes of `word`.
fn mix(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix_grid(mut h: u64, n: [usize; 3]) -> u64 {
    for d in n {
        h = mix(h, d as u64);
    }
    h
}

fn mix_box(mut h: u64, box_l: V3) -> u64 {
    for l in box_l {
        h = mix(h, l.to_bits());
    }
    h
}

impl BackendParams {
    /// The backend kind this parameter set plans.
    pub fn kind(&self) -> BackendKind {
        match self {
            Self::Tme(_) => BackendKind::Tme,
            Self::Spme(_) => BackendKind::Spme,
            Self::SpmePswf(_) => BackendKind::SpmePswf,
            Self::Ewald(_) => BackendKind::Ewald,
            Self::Msm(_) => BackendKind::Msm,
            Self::Slab(_) => BackendKind::Slab,
        }
    }

    /// Stable plan fingerprint: FNV-1a over the kind tag, every
    /// parameter field (floats by IEEE-754 bit pattern) and the box edge
    /// bits, in declaration order. Equal fingerprints ⇒ interchangeable
    /// plans; the value is stable across processes and platforms, so the
    /// serve plan cache and checkpoint compatibility checks can key on
    /// it.
    pub fn fingerprint(&self, box_l: V3) -> u64 {
        let mut h = mix(FNV_OFFSET, self.kind().tag() as u64);
        match self {
            Self::Tme(p) | Self::Msm(p) => {
                h = mix_grid(h, p.n);
                h = mix(h, p.p as u64);
                h = mix(h, p.levels as u64);
                h = mix(h, p.gc as u64);
                h = mix(h, p.m_gaussians as u64);
                h = mix(h, p.alpha.to_bits());
                h = mix(h, p.r_cut.to_bits());
            }
            Self::Spme(p) => {
                h = mix_grid(h, p.n);
                h = mix(h, p.p as u64);
                h = mix(h, p.alpha.to_bits());
                h = mix(h, p.r_cut.to_bits());
            }
            Self::SpmePswf(p) => {
                h = mix_grid(h, p.n);
                h = mix(h, p.p as u64);
                h = mix(h, p.alpha.to_bits());
                h = mix(h, p.r_cut.to_bits());
                h = mix(h, p.shape.to_bits());
            }
            Self::Ewald(p) => {
                h = mix(h, p.alpha.to_bits());
                h = mix(h, p.r_cut.to_bits());
                h = mix(h, p.n_cut as u64);
            }
            Self::Slab(p) => {
                h = mix_grid(h, p.n);
                h = mix(h, p.p as u64);
                h = mix(h, p.alpha.to_bits());
                h = mix(h, p.r_cut.to_bits());
                h = mix(h, p.gamma_top.to_bits());
                h = mix(h, p.gamma_bot.to_bits());
                h = mix(h, p.n_images as u64);
            }
        }
        mix_box(h, box_l)
    }
}

/// Plan-time rejection of an unusable backend configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendConfigError {
    /// TME/MSM configuration rejected by the multilevel planner.
    Tme(TmeConfigError),
    /// A mesh grid number is not a power of two ≥ 2 (FFT requirement).
    GridNotPow2 {
        /// The offending grid numbers.
        n: [usize; 3],
    },
    /// Window order unusable: must be even, in `2..=12`, and ≤ the
    /// smallest grid number.
    BadOrder {
        /// The offending order.
        p: usize,
    },
    /// Splitting unusable: α must be finite and > 0, and the cutoff must
    /// satisfy `0 < r_cut ≤ min(L)/2` (minimum-image bound of the box
    /// the short-range sum runs in).
    BadSplitting {
        /// Splitting parameter.
        alpha: f64,
        /// Real-space cutoff.
        r_cut: f64,
    },
    /// PSWF bandwidth unusable: c must be finite and ≥ π·p/2 (band edge
    /// at or above Nyquist), or `0.0` for the default.
    BadShape {
        /// The offending bandwidth.
        c: f64,
    },
    /// Slab wall reflection coefficient outside `[-1, 1]` or non-finite.
    BadReflection {
        /// The offending coefficient.
        gamma: f64,
    },
    /// Slab image layers per wall must be 0 or 1.
    BadImages {
        /// The offending layer count.
        n_images: u32,
    },
    /// Ewald reciprocal cutoff must be ≥ 1.
    BadKspace {
        /// The offending cutoff.
        n_cut: i64,
    },
    /// A box edge is non-finite or ≤ 0.
    BadBox {
        /// The offending box.
        box_l: V3,
    },
}

impl std::fmt::Display for BackendConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tme(e) => write!(f, "{e}"),
            Self::GridNotPow2 { n } => {
                write!(f, "grid numbers {n:?} must be powers of two >= 2")
            }
            Self::BadOrder { p } => {
                write!(f, "window order {p} must be even, in 2..=12, <= min grid number")
            }
            Self::BadSplitting { alpha, r_cut } => write!(
                f,
                "splitting alpha={alpha}, r_cut={r_cut} unusable (need finite alpha > 0, 0 < r_cut <= min(L)/2)"
            ),
            Self::BadShape { c } => write!(
                f,
                "PSWF bandwidth c={c} unusable (need finite c >= pi*p/2, or 0 for the default)"
            ),
            Self::BadReflection { gamma } => {
                write!(f, "slab reflection coefficient {gamma} outside [-1, 1]")
            }
            Self::BadImages { n_images } => {
                write!(f, "slab image layers {n_images} unsupported (0 or 1)")
            }
            Self::BadKspace { n_cut } => {
                write!(f, "Ewald reciprocal cutoff {n_cut} must be >= 1")
            }
            Self::BadBox { box_l } => {
                write!(f, "box edges {box_l:?} must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for BackendConfigError {}

impl From<TmeConfigError> for BackendConfigError {
    fn from(e: TmeConfigError) -> Self {
        Self::Tme(e)
    }
}

/// Execution statistics of one [`LongRangeBackend::compute_into`] call.
#[derive(Clone, Debug, Default)]
pub struct BackendStats {
    /// Finest-grid mesh points of the plan (0 for mesh-free backends) —
    /// the resolution axis of the accuracy/cost trade-off.
    pub grid_points: u64,
    /// TME pipeline counters and stage timings, when the backend is the
    /// TME.
    pub tme: Option<TmeStats>,
}

/// Cutoff-model scratch: the pool plus the fixed-partition pair-sum
/// accumulators.
struct PairScratch {
    pool: Arc<Pool>,
    pair: PairwiseScratch,
}

/// Quasi-2D slab scratch: the persistent image-augmented extended system
/// plus the extended-box SPME scratch and the sub-results the reduction
/// to real atoms works from. All buffers are `resize`d per call with
/// indexed writes — allocation-free once warm.
struct SlabScratch {
    pool: Arc<Pool>,
    ext: CoulombSystem,
    spme: SpmeScratch,
    ext_out: CoulombResult,
    sr: CoulombResult,
    selfr: CoulombResult,
    pair: PairwiseScratch,
}

/// The per-backend variants behind [`BackendWorkspace`] — private so no
/// caller can depend on a particular backend's scratch layout.
enum Ws {
    None,
    Tme(Box<TmeWorkspace>),
    Spme(Box<SpmeScratch>),
    Ewald(Box<EwaldScratch>),
    Msm(Box<MsmWorkspace>),
    Slab(Box<SlabScratch>),
    Pair(Box<PairScratch>),
}

/// Opaque per-backend execute state. Built by
/// [`LongRangeBackend::make_workspace`] and threaded through
/// `mesh_into`/`compute_into`; passing it to a plan of a different kind
/// (or one needing differently-shaped buffers) returns
/// [`TmeRecoverableError::WorkspaceMismatch`] — the execute path is
/// allocation-free by contract, so it can never rebuild the buffers
/// itself.
pub struct BackendWorkspace {
    ws: Ws,
}

impl Default for BackendWorkspace {
    /// An empty workspace — valid only for mesh-free backends.
    fn default() -> Self {
        Self { ws: Ws::None }
    }
}

impl std::fmt::Debug for BackendWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.ws {
            Ws::None => "BackendWorkspace(None)",
            Ws::Tme(_) => "BackendWorkspace(Tme)",
            Ws::Spme(_) => "BackendWorkspace(Spme)",
            Ws::Ewald(_) => "BackendWorkspace(Ewald)",
            Ws::Msm(_) => "BackendWorkspace(Msm)",
            Ws::Slab(_) => "BackendWorkspace(Slab)",
            Ws::Pair(_) => "BackendWorkspace(Pair)",
        })
    }
}

/// A planned long-range electrostatics solver.
///
/// Plans are immutable and shareable (`Arc<dyn LongRangeBackend>`); all
/// mutable state lives in the [`BackendWorkspace`]. Results are in
/// *reduced units* (no Coulomb constant) — the MD harness applies units,
/// and for mesh backends also the self term and exclusion corrections on
/// the `mesh_into` path.
pub trait LongRangeBackend: Send + Sync {
    /// The backend's kind discriminant.
    fn kind(&self) -> BackendKind;
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
    /// The Ewald splitting parameter the plan was built for (0 for the
    /// unscreened cutoff model).
    fn alpha(&self) -> f64;
    /// The real-space cutoff the plan was built for.
    fn r_cut(&self) -> f64;
    /// Stable plan fingerprint ([`BackendParams::fingerprint`]).
    fn fingerprint(&self) -> u64;
    /// Whether the plan adds an `erf(αr)/r` reciprocal part. When false
    /// the MD harness must not apply the Ewald self term or exclusion
    /// corrections — they cancel mesh contributions that were never
    /// added.
    fn has_mesh(&self) -> bool {
        true
    }
    /// Finest-grid mesh points (0 for mesh-free/direct backends).
    fn grid_points(&self) -> u64 {
        0
    }
    /// Build the execute workspace on a specific thread pool.
    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace;
    /// Build the execute workspace on the process-global pool.
    fn make_workspace(&self) -> BackendWorkspace {
        self.make_workspace_with_pool(Arc::clone(Pool::global()))
    }
    /// The mesh (reciprocal) contribution only — includes the window's
    /// smooth self-images, excludes the short-range and self terms. `out`
    /// is reset, not accumulated.
    fn mesh_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError>;
    /// The full Coulomb sum (short-range + mesh + self term), with the
    /// per-call statistics. `out` is reset, not accumulated.
    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError>;
}

fn check_box(box_l: V3) -> Result<(), BackendConfigError> {
    if box_l.iter().all(|l| l.is_finite() && *l > 0.0) {
        Ok(())
    } else {
        Err(BackendConfigError::BadBox { box_l })
    }
}

fn check_pow2(n: [usize; 3]) -> Result<(), BackendConfigError> {
    if n.iter().all(|d| *d >= 2 && d.is_power_of_two()) {
        Ok(())
    } else {
        Err(BackendConfigError::GridNotPow2 { n })
    }
}

fn check_order(p: usize, n: [usize; 3]) -> Result<(), BackendConfigError> {
    let n_min = n.iter().copied().min().unwrap_or(0);
    if (2..=12).contains(&p) && p.is_multiple_of(2) && p <= n_min {
        Ok(())
    } else {
        Err(BackendConfigError::BadOrder { p })
    }
}

/// α finite > 0 and `0 < r_cut ≤ min(box)/2` (the short-range pair sum's
/// minimum-image requirement, asserted there — rejected here so the
/// execute path cannot panic).
fn check_splitting(alpha: f64, r_cut: f64, box_l: V3) -> Result<(), BackendConfigError> {
    let l_min = box_l.iter().cloned().fold(f64::INFINITY, f64::min);
    if alpha.is_finite() && alpha > 0.0 && r_cut > 0.0 && r_cut <= l_min / 2.0 + 1e-12 {
        Ok(())
    } else {
        Err(BackendConfigError::BadSplitting { alpha, r_cut })
    }
}

/// Plan a backend from its parameters and the (real) box. All
/// configuration validation happens here; the returned plan's execute
/// methods are panic-free on any finite input.
pub fn plan_backend(
    params: &BackendParams,
    box_l: V3,
) -> Result<Arc<dyn LongRangeBackend>, BackendConfigError> {
    check_box(box_l)?;
    Ok(match params {
        BackendParams::Tme(p) => Arc::new(TmeBackend::new(*p, box_l)?),
        BackendParams::Spme(p) => Arc::new(SpmeBackend::new(*p, box_l)?),
        BackendParams::SpmePswf(p) => Arc::new(SpmeBackend::with_pswf(*p, box_l)?),
        BackendParams::Ewald(p) => Arc::new(EwaldBackend::new(*p, box_l)?),
        BackendParams::Msm(p) => Arc::new(MsmBackend::new(*p, box_l)?),
        BackendParams::Slab(p) => Arc::new(SlabBackend::new(*p, box_l)?),
    })
}

/// The TME pipeline behind the backend interface — the checked
/// `try_compute_with_stats` entry point, so input validation and result
/// validation ride along.
pub struct TmeBackend {
    tme: Tme,
    fingerprint: u64,
}

impl TmeBackend {
    /// Plan the TME for `params` in `box_l`.
    pub fn new(params: TmeParams, box_l: V3) -> Result<Self, BackendConfigError> {
        check_box(box_l)?;
        // `Tme::try_new` validates α/r_cut against zero but not against
        // the box: the minimum-image bound must be enforced here so the
        // execute path cannot hit the short-range pair sum's assert.
        check_splitting(params.alpha, params.r_cut, box_l)?;
        let tme = Tme::try_new(params, box_l)?;
        Ok(Self {
            fingerprint: BackendParams::Tme(params).fingerprint(box_l),
            tme,
        })
    }

    /// The underlying solver (for stage-level instrumentation).
    pub fn tme(&self) -> &Tme {
        &self.tme
    }
}

impl LongRangeBackend for TmeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Tme
    }

    fn alpha(&self) -> f64 {
        self.tme.params().alpha
    }

    fn r_cut(&self) -> f64 {
        self.tme.params().r_cut
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn grid_points(&self) -> u64 {
        self.tme.params().n.iter().map(|d| *d as u64).product()
    }

    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace {
        BackendWorkspace {
            ws: Ws::Tme(Box::new(TmeWorkspace::with_pool(&self.tme, pool))),
        }
    }

    fn mesh_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError> {
        let Ws::Tme(t) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        let (mesh, _) = self.tme.long_range_with(t, system);
        out.copy_from(mesh);
        Ok(())
    }

    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError> {
        let Ws::Tme(t) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        let (res, stats) = self.tme.try_compute_with_stats(t, system)?;
        out.copy_from(res);
        Ok(BackendStats {
            grid_points: self.grid_points(),
            tme: Some(stats),
        })
    }
}

/// SPME behind the backend interface — covers both the B-spline and the
/// PSWF window ([`BackendKind::Spme`] vs [`BackendKind::SpmePswf`]).
pub struct SpmeBackend {
    spme: Spme,
    kind: BackendKind,
    fingerprint: u64,
}

impl SpmeBackend {
    /// Plan a B-spline SPME.
    pub fn new(params: SpmeParams, box_l: V3) -> Result<Self, BackendConfigError> {
        check_box(box_l)?;
        check_pow2(params.n)?;
        check_order(params.p, params.n)?;
        check_splitting(params.alpha, params.r_cut, box_l)?;
        Ok(Self {
            spme: Spme::new(params.n, box_l, params.alpha, params.p, params.r_cut),
            kind: BackendKind::Spme,
            fingerprint: BackendParams::Spme(params).fingerprint(box_l),
        })
    }

    /// Plan a PSWF-window SPME. `shape == 0` selects the tuned default
    /// bandwidth; explicit bandwidths below π·p/2 are rejected (the band
    /// edge must not fall below Nyquist — see [`PswfParams::shape`]).
    pub fn with_pswf(params: PswfParams, box_l: V3) -> Result<Self, BackendConfigError> {
        check_box(box_l)?;
        check_pow2(params.n)?;
        check_order(params.p, params.n)?;
        check_splitting(params.alpha, params.r_cut, box_l)?;
        let nyquist = std::f64::consts::PI * params.p as f64 / 2.0;
        let window = if params.shape == 0.0 {
            PswfWindow::for_order(params.p)
        } else if params.shape.is_finite() && params.shape >= nyquist {
            PswfWindow::new(params.p, params.shape)
        } else {
            return Err(BackendConfigError::BadShape { c: params.shape });
        };
        Ok(Self {
            spme: Spme::with_pswf(params.n, box_l, params.alpha, params.r_cut, window),
            kind: BackendKind::SpmePswf,
            fingerprint: BackendParams::SpmePswf(params).fingerprint(box_l),
        })
    }

    /// The underlying solver.
    pub fn spme(&self) -> &Spme {
        &self.spme
    }
}

impl LongRangeBackend for SpmeBackend {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn alpha(&self) -> f64 {
        self.spme.alpha()
    }

    fn r_cut(&self) -> f64 {
        self.spme.r_cut()
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn grid_points(&self) -> u64 {
        self.spme.grid_dims().iter().map(|d| *d as u64).product()
    }

    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace {
        BackendWorkspace {
            ws: Ws::Spme(Box::new(self.spme.make_scratch(pool))),
        }
    }

    fn mesh_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError> {
        let Ws::Spme(s) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        self.spme.reciprocal_into(system, s, out);
        Ok(())
    }

    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError> {
        let Ws::Spme(s) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        self.spme.compute_into(system, s, out);
        Ok(BackendStats {
            grid_points: self.grid_points(),
            tme: None,
        })
    }
}

/// The direct Ewald oracle behind the backend interface.
pub struct EwaldBackend {
    ewald: Ewald,
    fingerprint: u64,
}

impl EwaldBackend {
    /// Plan a direct Ewald summation.
    pub fn new(params: EwaldParams, box_l: V3) -> Result<Self, BackendConfigError> {
        check_box(box_l)?;
        check_splitting(params.alpha, params.r_cut, box_l)?;
        if params.n_cut < 1 {
            return Err(BackendConfigError::BadKspace {
                n_cut: params.n_cut,
            });
        }
        Ok(Self {
            ewald: Ewald::new(params),
            fingerprint: BackendParams::Ewald(params).fingerprint(box_l),
        })
    }
}

impl LongRangeBackend for EwaldBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Ewald
    }

    fn alpha(&self) -> f64 {
        self.ewald.params.alpha
    }

    fn r_cut(&self) -> f64 {
        self.ewald.params.r_cut
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace {
        BackendWorkspace {
            ws: Ws::Ewald(Box::new(self.ewald.make_scratch(pool))),
        }
    }

    fn mesh_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError> {
        let Ws::Ewald(s) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        self.ewald.reciprocal_into(system, s, out);
        Ok(())
    }

    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError> {
        let Ws::Ewald(s) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        self.ewald.compute_into(system, s, out);
        Ok(BackendStats::default())
    }
}

/// The MSM baseline behind the backend interface.
pub struct MsmBackend {
    msm: Msm,
    fingerprint: u64,
}

impl MsmBackend {
    /// Plan an MSM with direct multilevel convolutions.
    pub fn new(params: TmeParams, box_l: V3) -> Result<Self, BackendConfigError> {
        check_box(box_l)?;
        // As for the TME: `Msm::try_new` does not bound r_cut against
        // the box, so the minimum-image requirement is enforced here.
        check_splitting(params.alpha, params.r_cut, box_l)?;
        let msm = Msm::try_new(params, box_l)?;
        Ok(Self {
            fingerprint: BackendParams::Msm(params).fingerprint(box_l),
            msm,
        })
    }
}

impl LongRangeBackend for MsmBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Msm
    }

    fn alpha(&self) -> f64 {
        self.msm.params().alpha
    }

    fn r_cut(&self) -> f64 {
        self.msm.params().r_cut
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn grid_points(&self) -> u64 {
        self.msm.params().n.iter().map(|d| *d as u64).product()
    }

    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace {
        BackendWorkspace {
            ws: Ws::Msm(Box::new(self.msm.make_workspace_with_pool(pool))),
        }
    }

    fn mesh_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError> {
        let Ws::Msm(m) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        let (mesh, _) = self.msm.long_range_into(system, m);
        out.copy_from(mesh);
        Ok(())
    }

    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError> {
        let Ws::Msm(m) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        self.msm.compute_into(system, m, out);
        Ok(BackendStats {
            grid_points: self.grid_points(),
            tme: None,
        })
    }
}

/// Atom count of the image-augmented extended slab system for `n_real`
/// real atoms with `n_images` image layers per wall.
pub fn slab_extended_len(n_real: usize, n_images: u32) -> usize {
    n_real * (1 + 2 * n_images as usize)
}

/// Build the image-augmented extended system of the quasi-2D slab
/// geometry into `ext` (resized in place; allocation-free once warm).
///
/// The real box is periodic in x/y with atoms at `0 ≤ z ≤ L_z`; the
/// extended box triples `L_z` and shifts the real atoms to the middle
/// third (`z → z + L_z`). With `n_images == 1`, each atom gains a
/// bottom-wall image at `L_z − z` carrying `γ_bot·q` and a top-wall image
/// at `3·L_z − z` carrying `γ_top·q` (the `z = 0` / `z = L_z` wall
/// reflections in extended coordinates). Layout: real atoms first, then
/// the bottom layer, then the top layer — so index `i < n_real` in any
/// extended-system result refers to real atom `i`.
pub fn slab_extend_system(
    system: &CoulombSystem,
    gamma_bot: f64,
    gamma_top: f64,
    n_images: u32,
    ext: &mut CoulombSystem,
) {
    let n = system.len();
    let lz = system.box_l[2];
    let total = slab_extended_len(n, n_images);
    ext.box_l = [system.box_l[0], system.box_l[1], 3.0 * lz];
    ext.pos.resize(total, [0.0; 3]);
    ext.q.resize(total, 0.0);
    for i in 0..n {
        let [x, y, z] = system.pos[i];
        ext.pos[i] = [x, y, z + lz];
        ext.q[i] = system.q[i];
    }
    if n_images >= 1 {
        for i in 0..n {
            let [x, y, z] = system.pos[i];
            ext.pos[n + i] = [x, y, lz - z];
            ext.q[n + i] = gamma_bot * system.q[i];
            ext.pos[2 * n + i] = [x, y, 3.0 * lz - z];
            ext.q[2 * n + i] = gamma_top * system.q[i];
        }
    }
}

/// Accumulate the Yeh–Berkowitz dipole (k = 0 planar) correction of the
/// extended slab system into `out`: with `M_z = Σ q_j z_j` over the
/// extended system and `V` its volume, each atom gains potential
/// `4π·M_z·z_i/V` and z-force `−4π·q_i·M_z/V` — the energy functional
/// `2π·M_z²/V` with its exact gradient.
pub fn slab_dipole_correction(ext: &CoulombSystem, out: &mut CoulombResult) {
    let v = ext.box_l[0] * ext.box_l[1] * ext.box_l[2];
    let pref = 4.0 * std::f64::consts::PI / v;
    let mut mz = 0.0;
    for (p, q) in ext.pos.iter().zip(&ext.q) {
        mz += q * p[2];
    }
    out.energy += 0.5 * pref * mz * mz;
    for i in 0..ext.len() {
        out.potentials[i] += pref * mz * ext.pos[i][2];
        out.forces[i][2] -= pref * ext.q[i] * mz;
    }
}

/// Quasi-2D slab geometry behind the backend interface: a B-spline SPME
/// on the z-tripled extended box over the image-augmented system
/// ([`slab_extend_system`]), plus the Yeh–Berkowitz dipole correction
/// ([`slab_dipole_correction`]), reduced to the real atoms. Energy is the
/// image-charge convention `E = ½ Σ_{i∈real} q_i·φ_i`; with
/// `γ_top = γ_bot = 0` this is exactly the Yeh–Berkowitz vacuum-gap
/// slab, whose forces are the exact gradient of the energy.
pub struct SlabBackend {
    spme: Spme,
    params: SlabParams,
    fingerprint: u64,
}

impl SlabBackend {
    /// Plan a slab for the **real** box `box_l` (the extended box is
    /// derived internally).
    pub fn new(params: SlabParams, box_l: V3) -> Result<Self, BackendConfigError> {
        check_box(box_l)?;
        check_pow2(params.n)?;
        check_order(params.p, params.n)?;
        let ext_box = [box_l[0], box_l[1], 3.0 * box_l[2]];
        // Validate the cutoff against the **real** box, not the extended
        // one: `mesh_into` runs the short-range reduction on the real box,
        // and min(real) ≤ min(extended), so the real-box bound also covers
        // the extended-box SPME's own minimum-image requirement.
        check_splitting(params.alpha, params.r_cut, box_l)?;
        for gamma in [params.gamma_top, params.gamma_bot] {
            if !(gamma.is_finite() && (-1.0..=1.0).contains(&gamma)) {
                return Err(BackendConfigError::BadReflection { gamma });
            }
        }
        if params.n_images > 1 {
            return Err(BackendConfigError::BadImages {
                n_images: params.n_images,
            });
        }
        Ok(Self {
            spme: Spme::new(params.n, ext_box, params.alpha, params.p, params.r_cut),
            fingerprint: BackendParams::Slab(params).fingerprint(box_l),
            params,
        })
    }

    /// Run the extended-box SPME over the image-augmented system and
    /// apply the dipole correction, leaving the extended result in
    /// `s.ext_out`.
    fn extended_compute(&self, system: &CoulombSystem, s: &mut SlabScratch) {
        slab_extend_system(
            system,
            self.params.gamma_bot,
            self.params.gamma_top,
            self.params.n_images,
            &mut s.ext,
        );
        self.spme.compute_into(&s.ext, &mut s.spme, &mut s.ext_out);
        slab_dipole_correction(&s.ext, &mut s.ext_out);
    }
}

impl LongRangeBackend for SlabBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Slab
    }

    fn alpha(&self) -> f64 {
        self.params.alpha
    }

    fn r_cut(&self) -> f64 {
        self.params.r_cut
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn grid_points(&self) -> u64 {
        self.params.n.iter().map(|d| *d as u64).product()
    }

    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace {
        BackendWorkspace {
            ws: Ws::Slab(Box::new(SlabScratch {
                spme: self.spme.make_scratch(Arc::clone(&pool)),
                pool,
                ext: CoulombSystem {
                    pos: Vec::new(),
                    q: Vec::new(),
                    box_l: [0.0; 3],
                },
                ext_out: CoulombResult::default(),
                sr: CoulombResult::default(),
                selfr: CoulombResult::default(),
                pair: PairwiseScratch::new(),
            })),
        }
    }

    /// The "mesh" part in the MD-harness decomposition: the full slab
    /// result minus the real-system short-range `erfc` sum and self term,
    /// so recombining with the harness's own short-range pairs and self
    /// term reconstructs [`Self::compute_into`] exactly.
    fn mesh_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError> {
        let Ws::Slab(s) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        let n = system.len();
        self.extended_compute(system, s);
        let pool = Arc::clone(&s.pool);
        pairwise::short_range_into(
            system,
            self.params.alpha,
            self.params.r_cut,
            &pool,
            &mut s.pair,
            &mut s.sr,
        );
        s.selfr.reset(n);
        pairwise::self_term_into(system, self.params.alpha, &mut s.selfr);
        out.reset(n);
        let mut energy = 0.0;
        for i in 0..n {
            let phi = s.ext_out.potentials[i] - s.sr.potentials[i] - s.selfr.potentials[i];
            out.potentials[i] = phi;
            for a in 0..3 {
                out.forces[i][a] = s.ext_out.forces[i][a] - s.sr.forces[i][a];
            }
            energy += 0.5 * system.q[i] * phi;
        }
        out.energy = energy;
        Ok(())
    }

    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError> {
        let Ws::Slab(s) = &mut ws.ws else {
            return Err(TmeRecoverableError::WorkspaceMismatch);
        };
        let n = system.len();
        self.extended_compute(system, s);
        out.reset(n);
        let mut energy = 0.0;
        for i in 0..n {
            let phi = s.ext_out.potentials[i];
            out.potentials[i] = phi;
            out.forces[i] = s.ext_out.forces[i];
            energy += 0.5 * system.q[i] * phi;
        }
        out.energy = energy;
        Ok(BackendStats {
            grid_points: self.grid_points(),
            tme: None,
        })
    }
}

/// No long-range part at all (plain truncated 1/r) — the ablation
/// baseline for "what does neglecting the mesh do to stability". Note
/// the bare truncated 1/r does NOT conserve energy (pairs crossing the
/// cutoff jump by `f q_i q_j / r_c`); use [`WolfScreened`] when a cheap
/// but conservative electrostatics is needed.
#[derive(Clone, Copy, Debug)]
pub struct CutoffOnly {
    /// The truncation radius.
    pub r_cut: f64,
}

/// Wolf-style screened cutoff electrostatics (Wolf et al. 1999): keep
/// the `erfc(αr)/r` short-range part and simply drop the mesh. The pair
/// interaction decays smoothly to ~`erfc(α r_c)` at the cutoff, so the
/// dynamics conserve energy (unlike [`CutoffOnly`]) at the price of a
/// systematic long-range bias — the cheap local approximation mesh
/// methods exist to beat.
#[derive(Clone, Copy, Debug)]
pub struct WolfScreened {
    /// Screening parameter.
    pub alpha: f64,
    /// The truncation radius.
    pub r_cut: f64,
}

impl WolfScreened {
    /// Screening chosen so the pair energy at the cutoff is `rtol` of
    /// the bare Coulomb value.
    pub fn for_cutoff(r_cut: f64, rtol: f64) -> Self {
        Self {
            alpha: tme_core::alpha_from_rtol(r_cut, rtol),
            r_cut,
        }
    }
}

/// Shared implementation of the two mesh-free cutoff models: the
/// `erfc(αr)/r` pair sum (α = 0 ⇒ bare 1/r), no mesh, no self term.
fn cutoff_compute_into(
    alpha: f64,
    r_cut: f64,
    system: &CoulombSystem,
    ws: &mut BackendWorkspace,
    out: &mut CoulombResult,
) -> Result<BackendStats, TmeRecoverableError> {
    let Ws::Pair(s) = &mut ws.ws else {
        return Err(TmeRecoverableError::WorkspaceMismatch);
    };
    let pool = Arc::clone(&s.pool);
    pairwise::short_range_into(system, alpha, r_cut, &pool, &mut s.pair, out);
    Ok(BackendStats::default())
}

fn cutoff_fingerprint(sub_tag: u64, alpha: f64, r_cut: f64) -> u64 {
    let mut h = mix(FNV_OFFSET, BackendKind::Cutoff.tag() as u64);
    h = mix(h, sub_tag);
    h = mix(h, alpha.to_bits());
    mix(h, r_cut.to_bits())
}

fn cutoff_workspace(pool: Arc<Pool>) -> BackendWorkspace {
    BackendWorkspace {
        ws: Ws::Pair(Box::new(PairScratch {
            pool,
            pair: PairwiseScratch::new(),
        })),
    }
}

impl LongRangeBackend for CutoffOnly {
    fn kind(&self) -> BackendKind {
        BackendKind::Cutoff
    }

    fn name(&self) -> &'static str {
        "cutoff"
    }

    fn alpha(&self) -> f64 {
        0.0
    }

    fn r_cut(&self) -> f64 {
        self.r_cut
    }

    fn fingerprint(&self) -> u64 {
        cutoff_fingerprint(0, 0.0, self.r_cut)
    }

    fn has_mesh(&self) -> bool {
        false
    }

    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace {
        cutoff_workspace(pool)
    }

    fn mesh_into(
        &self,
        system: &CoulombSystem,
        _ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError> {
        out.reset(system.len());
        Ok(())
    }

    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError> {
        cutoff_compute_into(0.0, self.r_cut, system, ws, out)
    }
}

impl LongRangeBackend for WolfScreened {
    fn kind(&self) -> BackendKind {
        BackendKind::Cutoff
    }

    fn name(&self) -> &'static str {
        "Wolf-screened cutoff"
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn r_cut(&self) -> f64 {
        self.r_cut
    }

    fn fingerprint(&self) -> u64 {
        cutoff_fingerprint(1, self.alpha, self.r_cut)
    }

    fn has_mesh(&self) -> bool {
        false
    }

    fn make_workspace_with_pool(&self, pool: Arc<Pool>) -> BackendWorkspace {
        cutoff_workspace(pool)
    }

    fn mesh_into(
        &self,
        system: &CoulombSystem,
        _ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<(), TmeRecoverableError> {
        out.reset(system.len());
        Ok(())
    }

    fn compute_into(
        &self,
        system: &CoulombSystem,
        ws: &mut BackendWorkspace,
        out: &mut CoulombResult,
    ) -> Result<BackendStats, TmeRecoverableError> {
        cutoff_compute_into(self.alpha, self.r_cut, system, ws, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tme_reference::EwaldParams;

    fn test_system() -> CoulombSystem {
        CoulombSystem::new(
            vec![
                [1.0, 1.0, 1.0],
                [2.0, 2.2, 1.8],
                [3.1, 0.5, 2.6],
                [0.4, 3.2, 3.5],
            ],
            vec![1.0, -1.0, 0.5, -0.5],
            [4.0; 3],
        )
    }

    fn tme_params() -> TmeParams {
        TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha: 2.0,
            r_cut: 1.2,
        }
    }

    fn all_params() -> Vec<BackendParams> {
        vec![
            BackendParams::Tme(tme_params()),
            BackendParams::Spme(SpmeParams {
                n: [16; 3],
                p: 6,
                alpha: 2.0,
                r_cut: 1.2,
            }),
            BackendParams::SpmePswf(PswfParams {
                n: [16; 3],
                p: 8,
                alpha: 2.0,
                r_cut: 1.2,
                shape: 0.0,
            }),
            BackendParams::Ewald(EwaldParams {
                alpha: 2.0,
                r_cut: 1.2,
                n_cut: 8,
            }),
            BackendParams::Msm(tme_params()),
            BackendParams::Slab(SlabParams {
                n: [16, 16, 64],
                p: 6,
                alpha: 2.0,
                r_cut: 1.2,
                gamma_top: 0.0,
                gamma_bot: 0.0,
                n_images: 0,
            }),
        ]
    }

    #[test]
    fn every_backend_plans_and_computes() {
        let sys = test_system();
        for params in all_params() {
            let plan = plan_backend(&params, sys.box_l).unwrap();
            assert_eq!(plan.kind(), params.kind());
            assert_eq!(plan.fingerprint(), params.fingerprint(sys.box_l));
            let mut ws = plan.make_workspace();
            let mut out = CoulombResult::default();
            let stats = plan.compute_into(&sys, &mut ws, &mut out).unwrap();
            assert_eq!(out.forces.len(), sys.len(), "{}", plan.name());
            assert!(out.energy.is_finite(), "{}", plan.name());
            assert!(
                out.forces.iter().flatten().all(|f| f.is_finite()),
                "{}",
                plan.name()
            );
            if plan.has_mesh() && plan.kind() != BackendKind::Ewald {
                assert!(stats.grid_points > 0, "{}", plan.name());
            }
            // The mesh part alone is also well-formed.
            let mut mesh = CoulombResult::default();
            plan.mesh_into(&sys, &mut ws, &mut mesh).unwrap();
            assert_eq!(mesh.forces.len(), sys.len(), "{}", plan.name());
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let box_l = [4.0; 3];
        let all = all_params();
        let prints: Vec<u64> = all.iter().map(|p| p.fingerprint(box_l)).collect();
        // Stable: recomputing gives the same value.
        for (p, fp) in all.iter().zip(&prints) {
            assert_eq!(p.fingerprint(box_l), *fp);
        }
        // Distinct across kinds (Tme and Msm share the parameter struct
        // but must not collide — the kind tag separates them).
        for i in 0..prints.len() {
            for j in (i + 1)..prints.len() {
                assert_ne!(prints[i], prints[j], "{:?} vs {:?}", all[i], all[j]);
            }
        }
        // Sensitive to every knob: parameter and box perturbations move
        // the hash.
        let base = BackendParams::Spme(SpmeParams {
            n: [16; 3],
            p: 6,
            alpha: 2.0,
            r_cut: 1.2,
        });
        let bumped = BackendParams::Spme(SpmeParams {
            n: [16; 3],
            p: 6,
            alpha: 2.0 + 1e-15,
            r_cut: 1.2,
        });
        assert_ne!(base.fingerprint(box_l), bumped.fingerprint(box_l));
        assert_ne!(base.fingerprint(box_l), base.fingerprint([4.0, 4.0, 8.0]));
    }

    #[test]
    fn workspace_mismatch_is_a_typed_error() {
        let sys = test_system();
        let tme = plan_backend(&BackendParams::Tme(tme_params()), sys.box_l).unwrap();
        let spme = plan_backend(
            &BackendParams::Spme(SpmeParams {
                n: [16; 3],
                p: 6,
                alpha: 2.0,
                r_cut: 1.2,
            }),
            sys.box_l,
        )
        .unwrap();
        let mut tme_ws = tme.make_workspace();
        let mut out = CoulombResult::default();
        // SPME plan handed a TME workspace: typed error, not a panic.
        assert!(matches!(
            spme.compute_into(&sys, &mut tme_ws, &mut out),
            Err(TmeRecoverableError::WorkspaceMismatch)
        ));
        assert!(matches!(
            spme.mesh_into(&sys, &mut tme_ws, &mut out),
            Err(TmeRecoverableError::WorkspaceMismatch)
        ));
        // An empty default workspace also mismatches every mesh backend.
        let mut empty = BackendWorkspace::default();
        assert!(matches!(
            tme.compute_into(&sys, &mut empty, &mut out),
            Err(TmeRecoverableError::WorkspaceMismatch)
        ));
    }

    #[test]
    fn plan_rejects_bad_configs() {
        let box_l = [4.0; 3];
        let spme = |n, p, alpha, r_cut| {
            plan_backend(
                &BackendParams::Spme(SpmeParams { n, p, alpha, r_cut }),
                box_l,
            )
            .err()
            .unwrap()
        };
        assert!(matches!(
            spme([12, 16, 16], 6, 2.0, 1.2),
            BackendConfigError::GridNotPow2 { .. }
        ));
        assert!(matches!(
            spme([16; 3], 5, 2.0, 1.2),
            BackendConfigError::BadOrder { p: 5 }
        ));
        assert!(matches!(
            spme([16; 3], 6, 2.0, 2.5),
            BackendConfigError::BadSplitting { .. }
        ));
        assert!(matches!(
            spme([16; 3], 6, -1.0, 1.2),
            BackendConfigError::BadSplitting { .. }
        ));
        // PSWF bandwidth below Nyquist is rejected (unstable deconvolution).
        assert!(matches!(
            plan_backend(
                &BackendParams::SpmePswf(PswfParams {
                    n: [16; 3],
                    p: 8,
                    alpha: 2.0,
                    r_cut: 1.2,
                    shape: 5.0,
                }),
                box_l
            )
            .err()
            .unwrap(),
            BackendConfigError::BadShape { .. }
        ));
        assert!(matches!(
            plan_backend(
                &BackendParams::Ewald(EwaldParams {
                    alpha: 2.0,
                    r_cut: 1.2,
                    n_cut: 0
                }),
                box_l
            )
            .err()
            .unwrap(),
            BackendConfigError::BadKspace { n_cut: 0 }
        ));
        assert!(matches!(
            plan_backend(
                &BackendParams::Slab(SlabParams {
                    n: [16, 16, 64],
                    p: 6,
                    alpha: 2.0,
                    r_cut: 1.2,
                    gamma_top: 1.5,
                    gamma_bot: 0.0,
                    n_images: 1,
                }),
                box_l
            )
            .err()
            .unwrap(),
            BackendConfigError::BadReflection { .. }
        ));
        assert!(matches!(
            plan_backend(
                &BackendParams::Slab(SlabParams {
                    n: [16, 16, 64],
                    p: 6,
                    alpha: 2.0,
                    r_cut: 1.2,
                    gamma_top: 0.0,
                    gamma_bot: 0.0,
                    n_images: 2,
                }),
                box_l
            )
            .err()
            .unwrap(),
            BackendConfigError::BadImages { n_images: 2 }
        ));
        assert!(matches!(
            plan_backend(&BackendParams::Tme(tme_params()), [4.0, -4.0, 4.0])
                .err()
                .unwrap(),
            BackendConfigError::BadBox { .. }
        ));
        // TME/MSM: a NaN cutoff or one past the minimum-image bound is a
        // plan-time error, never an execute-time panic.
        let mut nan_cut = tme_params();
        nan_cut.r_cut = f64::NAN;
        let mut wide_cut = tme_params();
        wide_cut.r_cut = 2.5; // > min(box)/2 = 2.0
        for p in [nan_cut, wide_cut] {
            assert!(matches!(
                plan_backend(&BackendParams::Tme(p), box_l).err().unwrap(),
                BackendConfigError::BadSplitting { .. }
            ));
            assert!(matches!(
                plan_backend(&BackendParams::Msm(p), box_l).err().unwrap(),
                BackendConfigError::BadSplitting { .. }
            ));
        }
        // Slab: the cutoff bound is the *real* box — r_cut = 1.4 fits the
        // extended box [4, 4, 6] but not the real box [4, 4, 2], whose
        // minimum image the short-range reduction runs under.
        assert!(matches!(
            plan_backend(
                &BackendParams::Slab(SlabParams {
                    n: [16, 16, 64],
                    p: 6,
                    alpha: 2.0,
                    r_cut: 1.4,
                    gamma_top: 0.0,
                    gamma_bot: 0.0,
                    n_images: 0,
                }),
                [4.0, 4.0, 2.0]
            )
            .err()
            .unwrap(),
            BackendConfigError::BadSplitting { .. }
        ));
    }

    #[test]
    fn backend_matches_direct_solver_bitwise() {
        let sys = test_system();
        // SPME through the backend == SPME called directly.
        let plan = plan_backend(
            &BackendParams::Spme(SpmeParams {
                n: [16; 3],
                p: 6,
                alpha: 2.0,
                r_cut: 1.2,
            }),
            sys.box_l,
        )
        .unwrap();
        let mut ws = plan.make_workspace();
        let mut out = CoulombResult::default();
        plan.compute_into(&sys, &mut ws, &mut out).unwrap();
        let spme = Spme::new([16; 3], sys.box_l, 2.0, 6, 1.2);
        let mut scratch = spme.make_scratch(Arc::clone(Pool::global()));
        let mut direct = CoulombResult::default();
        spme.compute_into(&sys, &mut scratch, &mut direct);
        assert_eq!(out.energy.to_bits(), direct.energy.to_bits());
        for (a, b) in out.forces.iter().zip(&direct.forces) {
            for k in 0..3 {
                assert_eq!(a[k].to_bits(), b[k].to_bits());
            }
        }
    }

    #[test]
    fn slab_extension_geometry() {
        let sys = CoulombSystem::new(
            vec![[1.0, 2.0, 0.5], [3.0, 1.0, 3.5]],
            vec![1.0, -1.0],
            [4.0; 3],
        );
        let mut ext = CoulombSystem {
            pos: Vec::new(),
            q: Vec::new(),
            box_l: [0.0; 3],
        };
        slab_extend_system(&sys, -1.0, 0.5, 1, &mut ext);
        assert_eq!(ext.len(), slab_extended_len(2, 1));
        assert_eq!(ext.box_l, [4.0, 4.0, 12.0]);
        // Real atoms shifted to the middle third.
        assert_eq!(ext.pos[0], [1.0, 2.0, 4.5]);
        assert_eq!(ext.q[0], 1.0);
        // Bottom image: z → L_z − z, charge γ_bot·q.
        assert_eq!(ext.pos[2], [1.0, 2.0, 3.5]);
        assert_eq!(ext.q[2], -1.0);
        // Top image: z → 3·L_z − z, charge γ_top·q.
        assert_eq!(ext.pos[4], [1.0, 2.0, 11.5]);
        assert_eq!(ext.q[4], 0.5);
        // n_images = 0: just the shifted real atoms.
        slab_extend_system(&sys, -1.0, 0.5, 0, &mut ext);
        assert_eq!(ext.len(), 2);
    }

    /// Yeh–Berkowitz (γ = 0) slab forces are the exact gradient of the
    /// energy: central-difference check on one atom's z coordinate
    /// through the full backend path (mesh + dipole correction).
    #[test]
    fn slab_yb_force_is_energy_gradient() {
        let params = SlabParams {
            n: [16, 16, 64],
            p: 6,
            alpha: 2.0,
            r_cut: 1.2,
            gamma_top: 0.0,
            gamma_bot: 0.0,
            n_images: 0,
        };
        let plan = plan_backend(&BackendParams::Slab(params), [4.0; 3]).unwrap();
        let mut ws = plan.make_workspace();
        let mut out = CoulombResult::default();
        let mut sys = CoulombSystem::new(
            vec![
                [1.0, 1.0, 1.0],
                [2.0, 2.2, 1.8],
                [3.1, 0.5, 2.6],
                [0.4, 3.2, 3.0],
            ],
            vec![1.0, -1.0, 0.5, -0.5],
            [4.0; 3],
        );
        plan.compute_into(&sys, &mut ws, &mut out).unwrap();
        let fz = out.forces[1][2];
        let h = 1e-4;
        let z0 = sys.pos[1][2];
        sys.pos[1][2] = z0 + h;
        plan.compute_into(&sys, &mut ws, &mut out).unwrap();
        let e_plus = out.energy;
        sys.pos[1][2] = z0 - h;
        plan.compute_into(&sys, &mut ws, &mut out).unwrap();
        let e_minus = out.energy;
        let fz_num = -(e_plus - e_minus) / (2.0 * h);
        assert!(
            (fz - fz_num).abs() <= 1e-4 * fz.abs().max(1.0),
            "analytic {fz} vs numeric {fz_num}"
        );
    }

    /// A charge near a conducting wall (γ = −1) is attracted to it.
    #[test]
    fn slab_conductor_attracts_charge() {
        let params = SlabParams {
            n: [16, 16, 64],
            p: 6,
            alpha: 2.0,
            r_cut: 1.2,
            gamma_top: 0.0,
            gamma_bot: -1.0,
            n_images: 1,
        };
        let plan = plan_backend(&BackendParams::Slab(params), [4.0; 3]).unwrap();
        let mut ws = plan.make_workspace();
        let mut out = CoulombResult::default();
        // Single +1 charge at height 0.4 above the conducting z = 0 wall;
        // its −1 image makes the extended system neutral.
        let sys = CoulombSystem::new(vec![[2.0, 2.0, 0.4]], vec![1.0], [4.0; 3]);
        plan.compute_into(&sys, &mut ws, &mut out).unwrap();
        assert!(
            out.forces[0][2] < -1e-3,
            "force toward the wall, got {}",
            out.forces[0][2]
        );
        // And the interaction energy is negative (bound to the image).
        assert!(out.energy < 0.0, "binding energy, got {}", out.energy);
    }

    #[test]
    fn mesh_free_backends_have_no_mesh() {
        let sys = test_system();
        let cut = CutoffOnly { r_cut: 1.2 };
        let wolf = WolfScreened::for_cutoff(1.2, 1e-3);
        for plan in [&cut as &dyn LongRangeBackend, &wolf] {
            assert!(!plan.has_mesh());
            assert_eq!(plan.grid_points(), 0);
            let mut ws = plan.make_workspace();
            let mut out = CoulombResult::default();
            plan.mesh_into(&sys, &mut ws, &mut out).unwrap();
            assert_eq!(out.energy, 0.0);
            assert!(out.forces.iter().flatten().all(|f| *f == 0.0));
            plan.compute_into(&sys, &mut ws, &mut out).unwrap();
            assert!(out.energy.is_finite());
        }
        assert_ne!(cut.fingerprint(), wolf.fingerprint());
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in [
            BackendKind::Tme,
            BackendKind::Spme,
            BackendKind::SpmePswf,
            BackendKind::Ewald,
            BackendKind::Msm,
            BackendKind::Slab,
        ] {
            assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
        }
        // Cutoff is deliberately not wire-decodable; unknown tags fail.
        assert_eq!(BackendKind::from_tag(BackendKind::Cutoff.tag()), None);
        assert_eq!(BackendKind::from_tag(0), None);
        assert_eq!(BackendKind::from_tag(200), None);
    }
}
