//! System topology: atoms, rigid molecules, exclusions.

use crate::bonded::BondedTerms;
use tme_mesh::CoulombSystem;
use tme_num::vec3::V3;

/// Per-atom Lennard-Jones parameters (σ in nm, ε in kJ/mol); zero ε means
/// the atom carries no LJ interaction (e.g. TIP3P hydrogens).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LjParams {
    pub sigma: f64,
    pub epsilon: f64,
}

/// A rigid three-site water molecule: indices of O, H1, H2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaterMol {
    pub o: usize,
    pub h1: usize,
    pub h2: usize,
}

/// A complete MD system (orthorhombic periodic box).
#[derive(Clone, Debug)]
pub struct MdSystem {
    pub pos: Vec<V3>,
    pub vel: Vec<V3>,
    pub mass: Vec<f64>,
    pub q: Vec<f64>,
    pub lj: Vec<LjParams>,
    pub box_l: V3,
    /// Rigid waters (constraint groups).
    pub waters: Vec<WaterMol>,
    /// Excluded nonbonded pairs (i < j), e.g. intramolecular pairs.
    pub exclusions: Vec<(usize, usize)>,
    /// Flexible bonded interactions (bonds/angles); empty for pure rigid
    /// water.
    pub bonded: BondedTerms,
}

impl MdSystem {
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// View as a bare charge system for the electrostatics solvers.
    pub fn coulomb_system(&self) -> CoulombSystem {
        CoulombSystem::new(self.pos.clone(), self.q.clone(), self.box_l)
    }

    /// Kinetic energy `½ Σ m v²` (kJ/mol).
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self
            .mass
            .iter()
            .zip(&self.vel)
            .map(|(m, v)| m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum::<f64>()
    }

    /// Degrees of freedom: 3N − 3·(waters) − 3 (COM motion removed),
    /// floored at 1 so degenerate systems don't divide by zero.
    pub fn degrees_of_freedom(&self) -> usize {
        (3 * self.len())
            .saturating_sub(3 * self.waters.len() + 3)
            .max(1)
    }

    /// Instantaneous temperature (K) from equipartition.
    pub fn temperature(&self) -> f64 {
        2.0 * self.kinetic_energy() / (self.degrees_of_freedom() as f64 * crate::units::KB)
    }

    /// Total linear momentum (u·nm/ps).
    pub fn momentum(&self) -> V3 {
        let mut p = [0.0; 3];
        for (m, v) in self.mass.iter().zip(&self.vel) {
            p[0] += m * v[0];
            p[1] += m * v[1];
            p[2] += m * v[2];
        }
        p
    }

    /// Remove centre-of-mass velocity.
    pub fn remove_com_velocity(&mut self) {
        let p = self.momentum();
        let m_tot: f64 = self.mass.iter().sum();
        for (m, v) in self.mass.iter().zip(self.vel.iter_mut()) {
            let _ = m;
            v[0] -= p[0] / m_tot;
            v[1] -= p[1] / m_tot;
            v[2] -= p[2] / m_tot;
        }
    }

    /// Is the (sorted) pair excluded? Exclusion list must be sorted.
    pub fn is_excluded(&self, i: usize, j: usize) -> bool {
        let key = if i < j { (i, j) } else { (j, i) };
        self.exclusions.binary_search(&key).is_ok()
    }

    /// Sort exclusions so `is_excluded` can binary-search.
    pub fn finalize(&mut self) {
        self.exclusions.sort_unstable();
        self.exclusions.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::tip3p;

    fn two_waters() -> MdSystem {
        let mut s = MdSystem {
            pos: vec![[0.0; 3]; 6],
            vel: vec![[0.0; 3]; 6],
            mass: vec![
                tip3p::M_O,
                tip3p::M_H,
                tip3p::M_H,
                tip3p::M_O,
                tip3p::M_H,
                tip3p::M_H,
            ],
            q: vec![
                tip3p::Q_O,
                tip3p::Q_H,
                tip3p::Q_H,
                tip3p::Q_O,
                tip3p::Q_H,
                tip3p::Q_H,
            ],
            lj: vec![LjParams::default(); 6],
            box_l: [3.0; 3],
            waters: vec![
                WaterMol { o: 0, h1: 1, h2: 2 },
                WaterMol { o: 3, h1: 4, h2: 5 },
            ],
            exclusions: vec![(1, 2), (0, 1), (0, 2), (3, 4), (3, 5), (4, 5)],
            bonded: BondedTerms::default(),
        };
        s.finalize();
        s
    }

    #[test]
    fn exclusion_lookup() {
        let s = two_waters();
        assert!(s.is_excluded(0, 1));
        assert!(s.is_excluded(2, 1)); // order-insensitive
        assert!(!s.is_excluded(0, 3));
        assert!(!s.is_excluded(2, 5));
    }

    #[test]
    fn dof_counts_constraints() {
        let s = two_waters();
        assert_eq!(s.degrees_of_freedom(), 18 - 6 - 3);
    }

    #[test]
    fn com_removal_zeroes_momentum() {
        let mut s = two_waters();
        for (i, v) in s.vel.iter_mut().enumerate() {
            *v = [i as f64 * 0.1, -0.2, 0.05 * i as f64];
        }
        s.remove_com_velocity();
        let p = s.momentum();
        assert!(p.iter().all(|c| c.abs() < 1e-12), "{p:?}");
    }

    #[test]
    fn kinetic_energy_and_temperature() {
        let mut s = two_waters();
        // All atoms at 1 nm/ps along x: E = ½Σm.
        for v in &mut s.vel {
            *v = [1.0, 0.0, 0.0];
        }
        let e = s.kinetic_energy();
        let m_tot: f64 = s.mass.iter().sum();
        assert!((e - 0.5 * m_tot).abs() < 1e-12);
        assert!(s.temperature() > 0.0);
    }
}
