//! Zero-allocation proof for the plan/execute split (`--features
//! alloc-count`): after one warm-up call sizes every lazily grown buffer,
//! repeated `Tme::compute_with` calls on a reused [`TmeWorkspace`] must
//! perform **zero** heap allocations — the property that lets the execute
//! phase run at MD-step cadence without allocator jitter.

use std::sync::Arc;

use tme_bench::alloc::CountingAllocator;
use tme_core::{Tme, TmeParams, TmeWorkspace};
use tme_mesh::CoulombSystem;
use tme_num::pool::Pool;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// 200 atoms (100 ion pairs, exactly neutral) at LCG-random positions.
fn random_neutral_system(n_atoms: usize, box_l: f64, seed: u64) -> CoulombSystem {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pos = (0..n_atoms)
        .map(|_| [next() * box_l, next() * box_l, next() * box_l])
        .collect();
    let q = (0..n_atoms)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    CoulombSystem::new(pos, q, [box_l; 3])
}

#[test]
fn steady_state_compute_is_allocation_free() {
    let tme = Tme::new(
        TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha: 2.0,
            r_cut: 1.2,
        },
        [4.0; 3],
    );
    let system = random_neutral_system(200, 4.0, 0xA110_C0DE);
    // Two workers so the test exercises the actual dispatch path, not the
    // threads == 1 inline shortcut; pool dispatch itself must not allocate.
    let mut ws = TmeWorkspace::with_pool(&tme, Arc::new(Pool::new(2)));

    // Warm-up: grows the per-worker line buffers, the interpolation and
    // force vectors, and the pairwise scratch to steady-state capacity.
    let reference_bits = tme.compute_with(&mut ws, &system).energy.to_bits();

    ALLOC.reset();
    let mut bits = 0u64;
    for _ in 0..5 {
        bits = tme.compute_with(&mut ws, &system).energy.to_bits();
    }
    let allocs = ALLOC.allocations();
    assert_eq!(
        allocs, 0,
        "steady-state compute_with heap-allocated {allocs} times after warm-up"
    );
    // The warm runs must also still be computing the same answer.
    assert_eq!(bits, reference_bits);
}
