//! One argument parser for every harness binary.
//!
//! The harnesses all speak the same tiny dialect — `--name value` pairs
//! and bare `--flag`s — but each binary used to re-scan `std::env::args`
//! per lookup, so a typo like `--water 512` silently ran the default.
//! [`Args`] parses once, hands out typed values, and [`Args::finish`]
//! turns anything left over (unknown flags, unparseable values) into a
//! hard error instead of a silent default.
//!
//! ```no_run
//! let mut args = tme_bench::args::Args::parse();
//! let steps: usize = args.get("--steps", 200);
//! let out = args.opt("--out").unwrap_or_else(|| "out.json".to_string());
//! args.finish(); // exits(2) with a message on leftovers or parse errors
//! ```

use std::str::FromStr;

/// Parsed command line: raw tokens plus a consumed/erroneous ledger.
pub struct Args {
    argv: Vec<String>,
    used: Vec<bool>,
    errors: Vec<String>,
}

impl Args {
    /// Capture the process arguments (without `argv[0]`).
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Build from an explicit token list (tests, embedding).
    pub fn from_vec(argv: Vec<String>) -> Self {
        let used = vec![false; argv.len()];
        Args {
            argv,
            used,
            errors: Vec::new(),
        }
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.argv.iter().position(|a| a == name)
    }

    /// `--flag` presence; consumes the token.
    pub fn flag(&mut self, name: &str) -> bool {
        match self.position(name) {
            Some(i) => {
                self.used[i] = true;
                true
            }
            None => false,
        }
    }

    /// `--name value` as a raw string; consumes both tokens.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let i = self.position(name)?;
        self.used[i] = true;
        match self.argv.get(i + 1) {
            Some(v) => {
                self.used[i + 1] = true;
                Some(v.clone())
            }
            None => {
                self.errors.push(format!("{name}: missing value"));
                None
            }
        }
    }

    /// `--name value` parsed as `T`, falling back to `default` when the
    /// flag is absent. A present-but-unparseable value is recorded as an
    /// error for [`Args::finish`] rather than silently defaulted.
    pub fn get<T: FromStr>(&mut self, name: &str, default: T) -> T {
        match self.opt(name) {
            Some(raw) => match raw.parse() {
                Ok(v) => v,
                Err(_) => {
                    self.errors.push(format!("{name}: cannot parse `{raw}`"));
                    default
                }
            },
            None => default,
        }
    }

    /// Collected problems: parse errors first, then any token no getter
    /// consumed (unknown or misspelled flags).
    pub fn problems(&self) -> Vec<String> {
        let mut out = self.errors.clone();
        for (i, a) in self.argv.iter().enumerate() {
            if !self.used[i] {
                out.push(format!("unknown argument `{a}`"));
            }
        }
        out
    }

    /// Exit(2) with a diagnostic if any flag was unknown or unparseable.
    /// Call after the last getter.
    pub fn finish(self) {
        let problems = self.problems();
        if !problems.is_empty() {
            for p in &problems {
                eprintln!("error: {p}");
            }
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn typed_getters_consume_their_tokens() {
        let mut a = Args::from_vec(argv(&["--steps", "10", "--quick", "--out", "x.json"]));
        assert_eq!(a.get("--steps", 200usize), 10);
        assert!(a.flag("--quick"));
        assert_eq!(a.opt("--out").as_deref(), Some("x.json"));
        assert!(a.problems().is_empty());
    }

    #[test]
    fn absent_flags_fall_back_to_defaults() {
        let mut a = Args::from_vec(argv(&[]));
        assert_eq!(a.get("--steps", 200usize), 200);
        assert!(!a.flag("--quick"));
        assert_eq!(a.opt("--out"), None);
        assert!(a.problems().is_empty());
    }

    #[test]
    fn unknown_flags_are_reported_not_ignored() {
        let mut a = Args::from_vec(argv(&["--water", "512"]));
        assert_eq!(a.get("--waters", 64usize), 64);
        let problems = a.problems();
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("--water"));
    }

    #[test]
    fn bad_values_are_errors_not_silent_defaults() {
        let mut a = Args::from_vec(argv(&["--seed", "many"]));
        assert_eq!(a.get("--seed", 42u64), 42);
        let problems = a.problems();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("cannot parse `many`"));
    }

    #[test]
    fn trailing_flag_without_value_is_an_error() {
        let mut a = Args::from_vec(argv(&["--out"]));
        assert_eq!(a.opt("--out"), None);
        assert!(a.problems()[0].contains("missing value"));
    }
}
