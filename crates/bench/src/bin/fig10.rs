//! Fig. 10 — detailed time chart of the GCU/long-range phases: restriction
//! (≈1.5 µs) + TMENW initiation, convolution (≈6 µs) ∥ TMENW round trip
//! (<20 µs), prolongation (≈1.5 µs) with the CGP software stretches.
//!
//! Usage: `cargo run -p tme-bench --bin fig10`

use mdgrape_sim::timechart::render_long_range;
use mdgrape_sim::{simulate_step, MachineConfig, StepWorkload};

fn main() {
    tme_bench::init_cli();
    let cfg = MachineConfig::mdgrape4a();
    let report = simulate_step(&cfg, &StepWorkload::paper_fig9());
    println!("# Fig 10: detailed GCU/long-range phases (simulated)");
    print!("{}", render_long_range(&report));
    println!("# paper: restriction 1.5 µs, convolution 6 µs, prolongation 1.5 µs,");
    println!("#        TMENW round trip < 20 µs, LRU (CA+BI) ~10 µs, total ~50 µs");
}
