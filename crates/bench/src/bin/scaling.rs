//! Strong-scaling study (extension; §I motivates the machine with strong
//! scalability): the Fig. 9 workload on 1–512 simulated nodes.
//!
//! Usage: `cargo run -p tme-bench --bin scaling`

use mdgrape_sim::scaling::{format_scaling, strong_scaling};
use mdgrape_sim::{MachineConfig, StepWorkload};

fn main() {
    tme_bench::init_cli();
    let base = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    println!(
        "# strong scaling of the Fig. 9 workload ({} atoms) over the torus size",
        w.n_atoms
    );
    let points = strong_scaling(&base, &w, &[1, 2, 4, 8]);
    print!("{}", format_scaling(&points));
    println!("#\n# the long-range share of the step grows with node count — the");
    println!("# latency-bound part the TME/torus co-design exists to contain.");
    for p in &points {
        println!(
            "# {:3} nodes: long-range share {:.1}%",
            p.nodes,
            p.long_range_us / p.step_us * 100.0
        );
    }
}
