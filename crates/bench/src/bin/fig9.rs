//! Fig. 9 — time chart of the SoC components during a single MD step on
//! the simulated MDGRAPE-4A (80,540 atoms, 32³ grid, L = 1, r_c = 1.2 nm,
//! g_c = 8, M = 4).
//!
//! Usage: `cargo run -p tme-bench --bin fig9 [--width 100]`

use mdgrape_sim::timechart::render;
use mdgrape_sim::{simulate_step, MachineConfig, StepWorkload};
use tme_bench::arg_or;

fn main() {
    tme_bench::init_cli();
    let width: usize = arg_or("--width", 100);
    let cfg = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    let report = simulate_step(&cfg, &w);
    println!(
        "# Fig 9: single MD step on simulated MDGRAPE-4A ({} atoms)",
        w.n_atoms
    );
    println!("{}", render(&report, width));
    println!(
        "total step time: {:.1} µs   (paper: 206 µs)",
        report.total_us
    );
    if let Some((s, e)) = report.long_range_span {
        println!(
            "long-range pipeline: {:.1} µs (t = {s:.1}..{e:.1})   (paper: ~50 µs)",
            e - s
        );
    }
    println!("\nper-module utilisation over the step:");
    for (name, frac) in report.utilisation() {
        println!(
            "  {name:<6} {:5.1}%  |{}",
            frac * 100.0,
            "#".repeat((frac * 40.0).round() as usize)
        );
    }
    println!("(the GP software phases dominate — the paper's §VI.B bottleneck)");
}
