//! Fig. 3 — the M-Gaussian approximation of the middle-range shell.
//!
//! (a) `g_{α,l}(r)/g_{α,l}(0)` and its Gauss–Legendre approximations for
//!     M = 1, 2 against `x = αr/2^{l−1}`;
//! (b) the approximation error for M = 1..4.
//!
//! Both curves are invariant in α and l (paper caption), so we evaluate
//! at α = 1, l = 1. Output: TSV series + max-error summary.
//!
//! Usage: `cargo run -p tme-bench --bin fig3 --release [--samples 200]`

use tme_bench::arg_or;
use tme_core::shells::{shell_exact, GaussianFit};

fn main() {
    tme_bench::init_cli();
    let samples: usize = arg_or("--samples", 100).max(1);
    let x_max = 5.0;
    let alpha = 1.0;
    let fits: Vec<GaussianFit> = (1..=4).map(|m| GaussianFit::new(alpha, m)).collect();
    let g0 = shell_exact(alpha, 1, 0.0);

    println!("# Fig 3(a): normalised shell and its Gaussian approximations");
    println!("# x = alpha*r/2^(l-1)\texact\tM=1\tM=2");
    for i in 0..=samples {
        let x = x_max * i as f64 / samples as f64;
        let r = x / alpha;
        let exact = shell_exact(alpha, 1, r) / g0;
        let m1 = fits[0].eval(1, r) / g0;
        let m2 = fits[1].eval(1, r) / g0;
        println!("{x:.4}\t{exact:.8}\t{m1:.8}\t{m2:.8}");
    }

    println!();
    println!("# Fig 3(b): approximation error of the normalised shell");
    println!("# x\tM=1\tM=2\tM=3\tM=4");
    for i in 0..=samples {
        let x = x_max * i as f64 / samples as f64;
        let r = x / alpha;
        let exact = shell_exact(alpha, 1, r);
        print!("{x:.4}");
        for fit in &fits {
            let err = (fit.eval(1, r) - exact).abs() / g0;
            print!("\t{err:.3e}");
        }
        println!();
    }

    println!();
    println!("# max |error| over x in (0, {x_max}]  (paper: rapid decrease with M)");
    for (m, fit) in fits.iter().enumerate() {
        let e = fit.normalised_max_error(x_max, 2000);
        println!("M={}  max_err={e:.3e}", m + 1);
    }
}
