//! Fig. 4 — NVE total-energy traces of SPME vs TME (g_c = 8, M = 1, 2, 3).
//!
//! The paper runs 200 ps of 32,773 rigid TIP3P waters in GROMACS (double
//! precision, SETTLE, 1 fs). Default here: 1,000 waters for 10 ps with the
//! same integrator structure (velocity-Verlet + SETTLE) — enough to show
//! the two observables of the figure:
//!
//! * no systematic energy drift for either method,
//! * a total-energy *offset* of TME(M = 1) relative to SPME that shrinks
//!   as M grows (the paper sees ≈ −80 kJ/mol at 98 k atoms for M = 1).
//!
//! Usage:
//!   cargo run -p tme-bench --bin fig4 --release \
//!       [--waters 1000] [--ps 10] [--rc 1.25] [--sample 100]
//!       [--relax 300] [--equil 0.5]
//!
//! `--equil` runs that many ps of Berendsen-thermostatted dynamics (with
//! the SPME solver) before the NVE measurement, so every method starts
//! from the same 300 K liquid-like state — mirroring the paper's use of
//! GROMACS-equilibrated configurations.

use tme_bench::{arg_or, grid_for_box};
use tme_core::TmeParams;
use tme_md::backend::{plan_backend, BackendParams, LongRangeBackend, SpmeParams};
use tme_md::nve::{energy_drift, NveSim};
use tme_md::thermostat::Berendsen;
use tme_md::water::{relax, thermalize, water_box};
use tme_reference::ewald::EwaldParams;

fn main() {
    tme_bench::init_cli();
    let n_waters: usize = arg_or("--waters", 1000);
    let ps: f64 = arg_or("--ps", 10.0);
    let r_cut: f64 = arg_or("--rc", 1.25);
    let sample: usize = arg_or("--sample", 100);
    let steps = (ps * 1000.0).round() as usize; // 1 fs steps
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);

    let relax_steps: usize = arg_or("--relax", 300);
    let equil_ps: f64 = arg_or("--equil", 0.5);
    let base_system = {
        let mut s = water_box(n_waters, 11);
        relax(&mut s, relax_steps, r_cut.min(0.9));
        thermalize(&mut s, 300.0, 12);
        s
    };
    let probe = &base_system;
    if probe.box_l[0] <= 2.0 * r_cut {
        eprintln!(
            "error: box edge {:.3} nm must exceed 2·rc = {:.3} nm; increase --waters or lower --rc",
            probe.box_l[0],
            2.0 * r_cut
        );
        std::process::exit(2);
    }
    let n_grid = grid_for_box(probe.box_l[0]).max(16);
    println!(
        "# Fig 4: {} waters, L = {:.4} nm, N = {n_grid}^3, rc = {r_cut} nm, {} steps of 1 fs",
        n_waters, probe.box_l[0], steps
    );

    let spme = plan_backend(
        &BackendParams::Spme(SpmeParams {
            n: [n_grid; 3],
            p: 6,
            alpha,
            r_cut,
        }),
        probe.box_l,
    )
    .expect("SPME plan");

    // Shared equilibration: Berendsen-thermostatted dynamics from the
    // relaxed lattice, so the NVE measurement starts at ~300 K.
    let equilibrated = {
        let mut sim = NveSim::new(base_system.clone(), spme.as_ref(), 0.001, r_cut);
        let thermo = Berendsen::new(300.0, 0.1);
        let equil_steps = (equil_ps * 1000.0).round() as usize;
        for _ in 0..equil_steps {
            sim.step();
            thermo.apply(&mut sim.system, 0.001);
        }
        eprintln!(
            "[equilibrated {equil_ps} ps with Berendsen: T = {:.0} K]",
            sim.system.temperature()
        );
        sim.system
    };
    let mut solvers: Vec<(String, std::sync::Arc<dyn LongRangeBackend>)> =
        vec![("SPME".into(), spme)];
    for m in 1..=3usize {
        let params = TmeParams {
            n: [n_grid; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: m,
            alpha,
            r_cut,
        };
        solvers.push((
            format!("TME M={m}"),
            plan_backend(&BackendParams::Tme(params), probe.box_l).expect("TME plan"),
        ));
    }

    let mesh_every: usize = arg_or("--mesh-every", 1);
    if mesh_every > 1 {
        println!("# long-range mesh evaluated every {mesh_every} steps (r-RESPA impulse)");
    }
    let mut all = Vec::new();
    for (name, solver) in &solvers {
        let sys = equilibrated.clone();
        let mut sim = NveSim::new(sys, solver.as_ref(), 0.001, r_cut);
        sim.mesh_interval = mesh_every;
        let records = sim.run(steps, sample);
        eprintln!(
            "[{name}: E0 = {:.2} kJ/mol, drift = {:.4} kJ/mol/ps, T = {:.0} K]",
            records[0].total,
            energy_drift(&records),
            records.last().unwrap().temperature
        );
        all.push((name.clone(), records));
    }

    println!(
        "# time(ps)\t{}",
        all.iter()
            .map(|(n, _)| n.clone())
            .collect::<Vec<_>>()
            .join("\t")
    );
    let rows = all[0].1.len();
    for i in 0..rows {
        print!("{:.3}", all[0].1[i].time);
        for (_, records) in &all {
            print!("\t{:.4}", records[i].total);
        }
        println!();
    }

    println!("#\n# summary (paper Fig. 4 shape): zero drift for all; TME(M=1) offset");
    println!("# below SPME, shrinking for M=2,3");
    let e_spme = all[0].1[0].total;
    for (name, records) in &all {
        let offset = records[0].total - e_spme;
        let drift = energy_drift(records);
        println!("{name:<9} offset vs SPME = {offset:+9.3} kJ/mol   drift = {drift:+.4} kJ/mol/ps");
    }
}
