//! Table 2 — performance comparison for 50k–100k-atom targets, plus the
//! §V.C overlap accounting (196 µs without long range → ~206 µs with:
//! a ~5% cost).
//!
//! The MDGRAPE-4A row is simulated; the other rows are the literature
//! values the paper itself quotes.
//!
//! Usage: `cargo run -p tme-bench --bin table2`

use mdgrape_sim::report::{format_table2, kwh_per_ns, table2, OverlapReport};
use mdgrape_sim::step::simulate_run;
use mdgrape_sim::{MachineConfig, StepWorkload};

fn main() {
    tme_bench::init_cli();
    let cfg = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    println!("# Table 2 (paper: MDGRAPE-4A = 1.0 µs/day, 200 µs/step, ~50 µs long-range)");
    print!("{}", format_table2(&table2(&cfg, &w)));

    let run = simulate_run(&cfg, &w, 50);
    println!(
        "machine power {:.1} kW (84 W x 512 chips) -> {:.2} kWh per simulated ns",
        cfg.system_power_w() / 1e3,
        kwh_per_ns(&cfg, run.mean(), 2.5)
    );
    println!(
        "
50-step simulated run: mean {:.1} µs/step (min {:.1}, max {:.1}, σ {:.2})",
        run.mean(),
        run.min(),
        run.max(),
        run.stddev()
    );

    let overlap = OverlapReport::compute(&cfg, &w);
    println!("\n# §V.C overlap accounting");
    println!(
        "step without long-range part: {:.1} µs   (paper: 196 µs)",
        overlap.without_long_range.total_us
    );
    println!(
        "step with long-range part:    {:.1} µs   (paper: 206 µs)",
        overlap.with_long_range.total_us
    );
    println!(
        "additional cost:              {:.1} µs = {:.1}%   (paper: ~10 µs, 5%)",
        overlap.overhead_us(),
        overlap.overhead_percent()
    );
}
