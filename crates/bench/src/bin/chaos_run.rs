//! Chaos benchmark: deterministic fault injection over the machine
//! simulator and the MD driver (DESIGN.md §11).
//!
//! Three experiments, one JSON report (`BENCH_chaos.json`):
//!
//! 1. **Fault-rate sweep** — the Fig. 9 workload runs under
//!    `FaultConfig::chaos(seed, rate)` for a fixed seed at increasing
//!    rates. Each row reports the mean step time, the scheduler-visible
//!    fault overhead, the event mix (link failures/degradations, SoC
//!    dropouts, TMENW timeouts) and the recovery count — every event the
//!    machine model survives is recorded with its recovery. Rate 0 runs
//!    through the *fault-aware* path with a quiet model and is asserted
//!    bitwise identical to the plain `simulate_run` (the zero-fault
//!    identity the step scheduler promises).
//! 2. **Machine-run checkpoint** — a faulted sweep is split in half
//!    through `RunCheckpoint` bytes and must land bitwise on the
//!    uninterrupted run (fault stream position travels with it).
//! 3. **Driver checkpoint** — an SPME water NVE run is killed mid-run,
//!    restored from its latest checkpoint into a fresh simulation, and
//!    must reproduce the uninterrupted trajectory bit-for-bit.
//!
//! The binary exits non-zero if any determinism contract is violated —
//! the CI chaos smoke gate.
//!
//! Usage: `cargo run --release -p tme-bench --bin chaos_run --
//!         [--steps 200] [--seed 42] [--out BENCH_chaos.json]`

use mdgrape_sim::{
    resume_run_faulted, simulate_run, simulate_run_faulted, FaultConfig, FaultEvent, FaultModel,
    MachineConfig, RunCheckpoint, RunReport, StepWorkload,
};
use tme_bench::args::Args;
use tme_md::backend::{SpmeBackend, SpmeParams};
use tme_md::water::{thermalize, water_box};
use tme_md::{run_with_checkpoints, NveSim};
use tme_reference::ewald::EwaldParams;

const RATES: [f64; 4] = [0.0, 0.002, 0.01, 0.05];

struct SweepRow {
    rate: f64,
    mean_us: f64,
    max_us: f64,
    fault_overhead_us: f64,
    link_failures: usize,
    link_degradations: usize,
    soc_failures: usize,
    tmenw_timeouts: usize,
    recoveries: usize,
}

fn count_events(report: &RunReport) -> (usize, usize, usize, usize) {
    let mut counts = (0, 0, 0, 0);
    for r in &report.faults {
        match r.event {
            FaultEvent::LinkFailed { .. } => counts.0 += 1,
            FaultEvent::LinkDegraded { .. } => counts.1 += 1,
            FaultEvent::SocFailed { .. } => counts.2 += 1,
            FaultEvent::TmenwTimeout { .. } => counts.3 += 1,
        }
    }
    counts
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// Experiment 2: split a faulted machine run through checkpoint bytes and
/// compare against the uninterrupted run. Returns true on bitwise match.
fn machine_checkpoint_demo(cfg: &MachineConfig, w: &StepWorkload, steps: usize, seed: u64) -> bool {
    let chaos = FaultConfig::chaos(seed, 0.01);
    let mut straight_model = FaultModel::new(chaos.clone());
    let straight = simulate_run_faulted(cfg, w, steps, &mut straight_model);

    let half = steps / 2;
    let mut model = FaultModel::new(chaos);
    let partial = simulate_run_faulted(cfg, w, half, &mut model);
    let bytes = RunCheckpoint {
        report: partial,
        model,
    }
    .to_bytes();
    let restored = match RunCheckpoint::from_bytes(&bytes) {
        Ok(c) => c,
        Err(e) => fail(&format!("machine checkpoint failed to decode: {e}")),
    };
    let resumed = resume_run_faulted(cfg, w, steps, restored);
    bits_equal(&straight.step_us, &resumed.step_us)
        && straight.faults == resumed.faults
        && straight.fault_overhead_us.to_bits() == resumed.fault_overhead_us.to_bits()
}

/// Experiment 3: kill an NVE run mid-flight, restore the latest
/// checkpoint into a fresh simulation, finish, and compare bitwise.
fn driver_checkpoint_demo() -> bool {
    let mut sys = water_box(64, 6);
    thermalize(&mut sys, 300.0, 9);
    let r_cut = 0.55;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let Ok(spme) = SpmeBackend::new(
        SpmeParams {
            n: [16; 3],
            p: 6,
            alpha,
            r_cut,
        },
        sys.box_l,
    ) else {
        fail("SPME plan rejected a valid configuration");
    };

    let total_steps = 12;
    let mut reference = NveSim::new(sys.clone(), &spme, 0.001, r_cut);
    reference.run(total_steps, total_steps);
    if reference.last_error().is_some() {
        fail("reference NVE run hit a numerical fault");
    }

    // The "crashing" run dies after step 9; checkpoints land every 4.
    let mut crashing = NveSim::new(sys.clone(), &spme, 0.001, r_cut);
    let run = run_with_checkpoints(&mut crashing, 9, 9, 4);
    let (at, bytes) = match run.latest() {
        Some((at, bytes)) => (*at, bytes.clone()),
        None => fail("driver run produced no checkpoint"),
    };
    drop(crashing); // the crash: all in-memory state is gone

    let mut restarted = NveSim::new(sys, &spme, 0.001, r_cut);
    if let Err(e) = restarted.restore(&bytes) {
        fail(&format!("driver checkpoint failed to restore: {e}"));
    }
    for _ in at..total_steps {
        restarted.step();
    }
    if restarted.last_error().is_some() {
        fail("restarted NVE run hit a numerical fault");
    }
    let flat = |v: &[[f64; 3]]| -> Vec<f64> { v.iter().flatten().copied().collect() };
    bits_equal(&flat(&reference.system.pos), &flat(&restarted.system.pos))
        && bits_equal(&flat(&reference.system.vel), &flat(&restarted.system.vel))
}

fn main() {
    tme_bench::init_cli();
    let mut args = Args::parse();
    let steps: usize = args.get("--steps", 200);
    let seed: u64 = args.get("--seed", 42);
    let out_path = args
        .opt("--out")
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    args.finish();

    let cfg = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    println!("# chaos_run: Fig. 9 workload, {steps} steps, fault seed {seed}");

    // Experiment 1: fault-rate sweep.
    let clean = simulate_run(&cfg, &w, steps);
    let mut rows: Vec<SweepRow> = Vec::new();
    for rate in RATES {
        let report = if rate == 0.0 {
            let mut quiet = FaultModel::new(FaultConfig::quiet(seed));
            let r = simulate_run_faulted(&cfg, &w, steps, &mut quiet);
            // Zero-fault identity: the fault-aware scheduler must not
            // perturb a single bit of the clean schedule.
            if !bits_equal(&clean.step_us, &r.step_us) || !r.faults.is_empty() {
                fail("quiet fault model diverged from the fault-free schedule");
            }
            r
        } else {
            let mut model = FaultModel::new(FaultConfig::chaos(seed, rate));
            simulate_run_faulted(&cfg, &w, steps, &mut model)
        };
        let (link_failures, link_degradations, soc_failures, tmenw_timeouts) =
            count_events(&report);
        let row = SweepRow {
            rate,
            mean_us: report.mean(),
            max_us: report.max(),
            fault_overhead_us: report.fault_overhead_us,
            link_failures,
            link_degradations,
            soc_failures,
            tmenw_timeouts,
            recoveries: report.faults.len(),
        };
        println!(
            "rate {:<6}: mean {:.1} us/step (clean {:.1}), overhead {:.1} us, events \
             {} link-fail / {} link-degrade / {} soc / {} tmenw, {} recoveries",
            row.rate,
            row.mean_us,
            clean.mean(),
            row.fault_overhead_us,
            row.link_failures,
            row.link_degradations,
            row.soc_failures,
            row.tmenw_timeouts,
            row.recoveries,
        );
        rows.push(row);
    }

    // Experiments 2 & 3: the two checkpoint/restart layers.
    let machine_ok = machine_checkpoint_demo(&cfg, &w, steps.clamp(20, 100), seed);
    println!(
        "machine-run checkpoint resume: {}",
        if machine_ok { "bitwise ok" } else { "MISMATCH" }
    );
    let driver_ok = driver_checkpoint_demo();
    println!(
        "driver (NVE) checkpoint restart: {}",
        if driver_ok { "bitwise ok" } else { "MISMATCH" }
    );

    let clean_mean = clean.mean();
    let json = tme_bench::json::report("chaos_run", |o| {
        o.u64("steps", steps as u64)
            .u64("seed", seed)
            .f64("clean_mean_us", clean_mean, 3)
            .bool("machine_checkpoint_bitwise", machine_ok)
            .bool("driver_checkpoint_bitwise", driver_ok)
            .rows("rows", &rows, |r, row| {
                row.f64("rate", r.rate, 3)
                    .f64("mean_us", r.mean_us, 3)
                    .f64("max_us", r.max_us, 3)
                    .f64("overhead_vs_clean", r.mean_us / clean_mean, 4)
                    .f64("fault_overhead_us", r.fault_overhead_us, 3)
                    .u64("link_failures", r.link_failures as u64)
                    .u64("link_degradations", r.link_degradations as u64)
                    .u64("soc_failures", r.soc_failures as u64)
                    .u64("tmenw_timeouts", r.tmenw_timeouts as u64)
                    .u64("recoveries", r.recoveries as u64);
            });
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    if !machine_ok || !driver_ok {
        fail("checkpoint/restart determinism contract violated");
    }
}
