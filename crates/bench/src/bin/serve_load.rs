//! Load-test harness for the `tme-serve` service (DESIGN.md §12.5).
//!
//! Starts an in-process server on an ephemeral port, then:
//!
//! 1. **Plan-cache demo** — two identical configurations back to back:
//!    the second must report a cache hit and bitwise-identical energy.
//! 2. **Capacity probe** — sequential requests give the median service
//!    time, from which the offered loads are derived.
//! 3. **Open-loop sweep** — seeded (`SplitMix64`) Poisson arrivals at
//!    three offered loads (~0.5×, 1×, 2.5× measured capacity) over a few
//!    client connections. Open loop means arrivals do not wait for
//!    responses — over-capacity load piles into the bounded queue and
//!    must surface as `Rejected` responses with retry hints, never as
//!    queue growth (the final stats' high-water mark proves it).
//! 4. **Graceful drain** — the server drains; the final snapshot must
//!    account for every submitted request.
//!
//! Emits `BENCH_serve.json` (throughput, p50/p99 latency, cache hit
//! rate, rejection rate per load) and exits non-zero if any service
//! contract is violated — the CI `serve-smoke` gate.
//!
//! Usage: `cargo run --release -p tme-bench --bin serve_load --
//!         [--quick] [--workers 2] [--queue 8] [--seed 42]
//!         [--out BENCH_serve.json]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tme_bench::args::Args;
use tme_core::TmeParams;
use tme_md::backend::BackendParams;
use tme_num::rng::SplitMix64;
use tme_reference::ewald::EwaldParams;
use tme_serve::{serve, Client, Request, Response, ServeConfig};

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// The small repeat-client workload: a 16-site dipole lattice on the
/// 16³ grid. Cheap to execute, so the sweep measures the *service*
/// layers (queueing, cache, protocol), not the solver.
fn workload_request(alpha_salt: u64) -> Request {
    let r_cut = 1.0;
    // Two distinct alphas → two plan-cache entries; every request after
    // the first pair of misses should hit.
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4) + alpha_salt as f64 * 1e-3;
    let mut pos = Vec::new();
    let mut q = Vec::new();
    for i in 0..8 {
        let base = [
            1.0 + f64::from(i % 2) * 2.0,
            1.0 + f64::from((i / 2) % 2) * 2.0,
            1.0 + f64::from(i / 4) * 2.0,
        ];
        pos.push(base);
        q.push(1.0);
        pos.push([base[0] + 0.8, base[1], base[2]]);
        q.push(-1.0);
    }
    Request::Compute {
        deadline_ms: 0,
        params: BackendParams::Tme(TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha,
            r_cut,
        }),
        box_l: [4.0; 3],
        pos,
        q,
    }
}

#[derive(Default)]
struct LoadOutcome {
    completed: u64,
    rejected: u64,
    expired: u64,
    errors: u64,
    cache_hits: u64,
    latencies_us: Vec<u64>,
}

struct LoadRow {
    offered_rps: f64,
    achieved_rps: f64,
    completed: u64,
    rejected: u64,
    expired: u64,
    rejection_rate: f64,
    cache_hit_rate: f64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drive one offered load: open-loop Poisson arrivals split round-robin
/// over `clients` connections. Returns client-side outcome counts.
fn run_load(
    addr: std::net::SocketAddr,
    offered_rps: f64,
    duration_s: f64,
    clients: usize,
    seed: u64,
    protocol_errors: &AtomicU64,
) -> LoadOutcome {
    // Pre-draw the whole arrival schedule so the load is a pure function
    // of the seed.
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut schedules: Vec<Vec<(f64, u64)>> = vec![Vec::new(); clients];
    let mut t = 0.0;
    let mut i = 0usize;
    while t < duration_s {
        t += -(1.0 - rng.uniform()).ln() / offered_rps;
        // ~1 in 8 requests uses the second configuration, exercising
        // plan-cache multi-tenancy.
        let salt = u64::from(rng.gen_index(8) == 0);
        schedules[i % clients].push((t, salt));
        i += 1;
    }
    let start = Instant::now();
    let mut merged = LoadOutcome::default();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for schedule in schedules {
            joins.push(scope.spawn(move || {
                let mut out = LoadOutcome::default();
                let Ok(mut client) = Client::connect(addr) else {
                    out.errors += schedule.len() as u64;
                    return out;
                };
                for (at, salt) in schedule {
                    // Open loop: arrivals follow the schedule, not the
                    // previous response. When behind, fire immediately.
                    let due = Duration::from_secs_f64(at);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let t0 = Instant::now();
                    match client.call(&workload_request(salt)) {
                        Ok(Response::Computed { cache_hit, .. }) => {
                            out.completed += 1;
                            out.cache_hits += u64::from(cache_hit);
                            out.latencies_us
                                .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                        }
                        Ok(Response::Rejected { retry_after_ms, .. }) => {
                            out.rejected += 1;
                            if retry_after_ms == 0 {
                                out.errors += 1; // rejection must carry a hint
                            }
                        }
                        Ok(Response::Expired { .. }) => out.expired += 1,
                        // Unexpected kinds and transport failures count as
                        // generic errors; only decode failures are protocol.
                        Ok(_) | Err(tme_serve::WireError::Io { .. }) => out.errors += 1,
                        Err(_) => {
                            protocol_errors.fetch_add(1, Ordering::SeqCst);
                            out.errors += 1;
                        }
                    }
                }
                out
            }));
        }
        for j in joins {
            let Ok(out) = j.join() else {
                fail("load client thread panicked");
            };
            merged.completed += out.completed;
            merged.rejected += out.rejected;
            merged.expired += out.expired;
            merged.errors += out.errors;
            merged.cache_hits += out.cache_hits;
            merged.latencies_us.extend(out.latencies_us);
        }
    });
    merged
}

fn main() {
    tme_bench::init_cli();
    let mut args = Args::parse();
    let quick = args.flag("--quick");
    let workers: usize = args.get("--workers", 2);
    let queue: usize = args.get("--queue", 8);
    let seed: u64 = args.get("--seed", 42);
    let out_path = args
        .opt("--out")
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    args.finish();
    let duration_s = if quick { 1.0 } else { 3.0 };
    // Enough serial connections that the in-flight count can exceed
    // workers + queue capacity — otherwise the queue can never fill and
    // backpressure would go untested.
    let clients = workers + queue + 4;

    let handle = match serve(ServeConfig {
        workers,
        queue_capacity: queue,
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => fail(&format!("server failed to start: {e}")),
    };
    let addr = handle.local_addr();
    println!("# serve_load: server on {addr}, {workers} workers, queue {queue}, seed {seed}");

    // 1. Plan-cache demo: second identical config must hit, same bits.
    let mut probe = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => fail(&format!("could not connect: {e}")),
    };
    let (e1, hit1) = match probe.call(&workload_request(0)) {
        Ok(Response::Computed {
            energy, cache_hit, ..
        }) => (energy, cache_hit),
        other => fail(&format!("probe compute failed: {other:?}")),
    };
    let (e2, hit2) = match probe.call(&workload_request(0)) {
        Ok(Response::Computed {
            energy, cache_hit, ..
        }) => (energy, cache_hit),
        other => fail(&format!("probe compute failed: {other:?}")),
    };
    if hit1 || !hit2 {
        fail(&format!(
            "plan cache broken: first hit={hit1} (want miss), second hit={hit2} (want hit)"
        ));
    }
    if e1.to_bits() != e2.to_bits() {
        fail("cache hit changed the energy bits");
    }
    println!("plan cache: miss then hit, energy bitwise identical ({e1:.6})");

    // 2. Capacity probe: median sequential service time.
    let probe_n = if quick { 10 } else { 30 };
    let mut service_us: Vec<u64> = Vec::new();
    for _ in 0..probe_n {
        let t0 = Instant::now();
        if !matches!(
            probe.call(&workload_request(0)),
            Ok(Response::Computed { .. })
        ) {
            fail("capacity probe request failed");
        }
        service_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    service_us.sort_unstable();
    let median_us = service_us[service_us.len() / 2].max(50);
    let capacity_rps = (workers as f64) * 1e6 / median_us as f64;
    println!("capacity probe: median service {median_us} µs -> ~{capacity_rps:.0} rps capacity");

    // 3. Open-loop sweep at three offered loads.
    let protocol_errors = AtomicU64::new(0);
    let mut rows: Vec<LoadRow> = Vec::new();
    for (li, factor) in [0.5, 1.0, 2.5].into_iter().enumerate() {
        let offered_rps = (capacity_rps * factor).clamp(4.0, 5000.0);
        let t0 = Instant::now();
        let out = run_load(
            addr,
            offered_rps,
            duration_s,
            clients,
            seed ^ ((li as u64 + 1) << 32),
            &protocol_errors,
        );
        let elapsed = t0.elapsed().as_secs_f64().max(1e-6);
        let mut lat = out.latencies_us.clone();
        lat.sort_unstable();
        let submitted = out.completed + out.rejected + out.expired + out.errors;
        let row = LoadRow {
            offered_rps,
            achieved_rps: out.completed as f64 / elapsed,
            completed: out.completed,
            rejected: out.rejected,
            expired: out.expired,
            rejection_rate: if submitted == 0 {
                0.0
            } else {
                out.rejected as f64 / submitted as f64
            },
            cache_hit_rate: if out.completed == 0 {
                0.0
            } else {
                out.cache_hits as f64 / out.completed as f64
            },
            p50_us: percentile(&lat, 0.50),
            p99_us: percentile(&lat, 0.99),
        };
        println!(
            "load {factor:>3}x: offered {:.0} rps, achieved {:.0} rps, {} completed / {} \
             rejected / {} expired, p50 {} µs, p99 {} µs, cache hit {:.1}%",
            row.offered_rps,
            row.achieved_rps,
            row.completed,
            row.rejected,
            row.expired,
            row.p50_us,
            row.p99_us,
            100.0 * row.cache_hit_rate
        );
        if out.errors > 0 {
            fail(&format!(
                "{} client-side errors at load {factor}x",
                out.errors
            ));
        }
        rows.push(row);
    }

    // 4. Drain and final bookkeeping.
    handle.trigger_drain();
    let stats = handle.join();
    println!("--- final server stats ---\n{stats}");

    let proto_errs = protocol_errors.load(Ordering::SeqCst) + stats.protocol_errors;
    if proto_errs > 0 {
        fail(&format!("{proto_errs} protocol errors"));
    }
    let top = rows.last().map_or(0, |r| r.rejected);
    if top == 0 {
        fail("over-capacity load produced zero rejections — backpressure is not engaging");
    }
    if stats.queue_max_depth > queue as u64 {
        fail(&format!(
            "queue grew to {} beyond its capacity {queue}",
            stats.queue_max_depth
        ));
    }
    let answered = stats.completed + stats.rejected + stats.expired + stats.server_errors;
    let work_received = stats.kinds.compute + stats.kinds.nve_run + stats.kinds.estimate;
    if answered != work_received {
        fail(&format!(
            "drain lost requests: {work_received} work requests received, {answered} answered"
        ));
    }
    if quick {
        let p99 = rows.iter().map(|r| r.p99_us).max().unwrap_or(0);
        if p99 > 2_000_000 {
            fail(&format!("p99 {p99} µs exceeds the 2 s quick-mode bound"));
        }
    }
    println!(
        "drain: all {work_received} work requests answered; queue high-water {} <= {queue}",
        stats.queue_max_depth
    );

    let json = tme_bench::json::report("serve_load", |o| {
        o.u64("seed", seed)
            .u64("workers", workers as u64)
            .u64("queue_capacity", queue as u64)
            .bool("quick", quick)
            .f64("capacity_probe_rps", capacity_rps, 1)
            .u64("median_service_us", median_us)
            .u64("protocol_errors", proto_errs)
            .u64("queue_max_depth", stats.queue_max_depth)
            .f64("overall_cache_hit_rate", stats.cache_hit_rate(), 4)
            .rows("rows", &rows, |r, row| {
                row.f64("offered_rps", r.offered_rps, 1)
                    .f64("achieved_rps", r.achieved_rps, 1)
                    .u64("completed", r.completed)
                    .u64("rejected", r.rejected)
                    .u64("expired", r.expired)
                    .f64("rejection_rate", r.rejection_rate, 4)
                    .f64("cache_hit_rate", r.cache_hit_rate, 4)
                    .u64("p50_us", r.p50_us)
                    .u64("p99_us", r.p99_us);
            });
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
