//! Load-test harness for the `tme-serve` service (DESIGN.md §12.5, §16).
//!
//! Starts an in-process server on an ephemeral port, then:
//!
//! 1. **Plan-cache demo** — two identical configurations back to back:
//!    the second must report a cache hit and bitwise-identical energy.
//! 2. **Capacity probe** — sequential requests give the median service
//!    time, from which the offered loads are derived.
//! 3. **Open-loop overload ramp** — seeded (`SplitMix64`) Poisson
//!    arrivals at four offered loads (~0.5×, 1×, 2.5×, 5× measured
//!    capacity). Open loop means arrivals do not wait for responses —
//!    over-capacity load must surface as `Rejected` responses with retry
//!    hints or shed connections, never as queue growth. The **goodput
//!    gate** requires achieved throughput at 2.5× to stay within 15% of
//!    the 1× row: admission control must hold goodput flat under
//!    overload rather than letting reject-path work starve the workers.
//! 4. **Tight-deadline leg** — 2.5× load again, but every request
//!    carries a deadline a few multiples of the median service time.
//!    The server's `expired` counter must move (the EDF queue and
//!    deadline sweep are actually retiring doomed work) and clients must
//!    see `Expired` responses.
//! 5. **Closed-loop backoff leg** — `RetryingClient`s that honour
//!    `retry_after_ms` hints with jittered exponential backoff. Every
//!    request must reach a terminal outcome with zero protocol errors.
//! 6. **Graceful drain** — the final snapshot must account for every
//!    decoded work request, and the admission-cost ledger must balance
//!    (`outstanding == 0`, admitted == released).
//!
//! With `--cluster N` (N ≥ 2) a seventh section runs after the
//! single-server suite: a `tme-router` front door over N `tme-serve`
//! shards, each configured with a `min_service_us` floor so capacity is
//! latency-bound and scales with shard count even on one core (the
//! floor emulates the accelerator-offload wait; DESIGN.md §17.6).
//! The cluster legs gate, in order:
//!
//! * **Capacity scaling** — closed-loop saturation through the router
//!   at 1 shard then N shards; achieved throughput at N shards must be
//!   ≥ 0.8·N× the 1-shard row (≥ 2.4× at N = 3).
//! * **Plan-cache affinity** — rendezvous routing must pin each
//!   distinct configuration to one shard: the repeat-request cache-hit
//!   rate across the whole cluster must be ≥ 95%.
//! * **Shard kill** — one shard is drained mid-load; every admitted
//!   request must still terminate with a typed response (zero lost),
//!   and fresh keys must land exactly where rendezvous over the
//!   survivor set predicts (deterministic convergence).
//!
//! Emits `BENCH_serve.json` (plus a `cluster_*` row family when
//! `--cluster` ran) and exits non-zero if any service contract is
//! violated — the CI `serve-smoke` and `cluster-smoke` gates.
//!
//! Usage: `cargo run --release -p tme-bench --bin serve_load --
//!         [--quick] [--workers 2] [--queue 8] [--cost-budget 32768]
//!         [--cluster N] [--seed 42] [--out BENCH_serve.json]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tme_bench::args::Args;
use tme_core::TmeParams;
use tme_md::backend::BackendParams;
use tme_num::rng::SplitMix64;
use tme_reference::ewald::EwaldParams;
use tme_router::{pick_shard, route_key, HealthConfig, RouterConfig};
use tme_serve::{
    serve, BackoffPolicy, Client, Request, Response, RetryingClient, ServeConfig, ServerHandle,
    WireError,
};

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// The small repeat-client workload: a 16-site dipole lattice on the
/// 16³ grid. Cheap to execute, so the sweep measures the *service*
/// layers (queueing, admission, cache, protocol), not the solver.
fn workload_request(alpha_salt: u64, deadline_ms: u64) -> Request {
    let r_cut = 1.0;
    // Two distinct alphas → two plan-cache entries; every request after
    // the first pair of misses should hit.
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4) + alpha_salt as f64 * 1e-3;
    let mut pos = Vec::new();
    let mut q = Vec::new();
    for i in 0..8 {
        let base = [
            1.0 + f64::from(i % 2) * 2.0,
            1.0 + f64::from((i / 2) % 2) * 2.0,
            1.0 + f64::from(i / 4) * 2.0,
        ];
        pos.push(base);
        q.push(1.0);
        pos.push([base[0] + 0.8, base[1], base[2]]);
        q.push(-1.0);
    }
    Request::Compute {
        deadline_ms,
        params: BackendParams::Tme(TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha,
            r_cut,
        }),
        box_l: [4.0; 3],
        pos,
        q,
    }
}

#[derive(Default)]
struct LoadOutcome {
    completed: u64,
    rejected: u64,
    expired: u64,
    shed: u64,
    errors: u64,
    cache_hits: u64,
    latencies_us: Vec<u64>,
}

struct LoadRow {
    offered_rps: f64,
    achieved_rps: f64,
    completed: u64,
    rejected: u64,
    expired: u64,
    shed: u64,
    rejection_rate: f64,
    cache_hit_rate: f64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drive one offered load: open-loop Poisson arrivals split round-robin
/// over `clients` connections. Returns client-side outcome counts.
///
/// A shed connection (the server's one-byte pre-accept refusal) or a
/// dropped transport is the *designed* overload response, not a failure:
/// it counts in `shed` and the client reconnects on its next scheduled
/// arrival, exactly like a real client would.
fn run_load(
    addr: std::net::SocketAddr,
    offered_rps: f64,
    duration_s: f64,
    clients: usize,
    deadline_ms: u64,
    seed: u64,
    protocol_errors: &AtomicU64,
) -> LoadOutcome {
    // Pre-draw the whole arrival schedule so the load is a pure function
    // of the seed.
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut schedules: Vec<Vec<(f64, u64)>> = vec![Vec::new(); clients];
    let mut t = 0.0;
    let mut i = 0usize;
    while t < duration_s {
        t += -(1.0 - rng.uniform()).ln() / offered_rps;
        // ~1 in 8 requests uses the second configuration, exercising
        // plan-cache multi-tenancy.
        let salt = u64::from(rng.gen_index(8) == 0);
        schedules[i % clients].push((t, salt));
        i += 1;
    }
    let start = Instant::now();
    let mut merged = LoadOutcome::default();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for schedule in schedules {
            joins.push(scope.spawn(move || {
                let mut out = LoadOutcome::default();
                let mut client: Option<Client> = None;
                // Build the two request variants once: the generator must
                // not burn the shared core re-allocating payloads at
                // flood rate.
                let reqs = [
                    workload_request(0, deadline_ms),
                    workload_request(1, deadline_ms),
                ];
                for (at, salt) in schedule {
                    // Open loop: arrivals follow the schedule, not the
                    // previous response. When behind, fire immediately.
                    let due = Duration::from_secs_f64(at);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let cl = match &mut client {
                        Some(cl) => cl,
                        // Bounded connect: a full listen backlog (the
                        // server pacing its sheds) must read as a fast
                        // busy signal, not a seconds-long SYN stall that
                        // would smear this leg's measurement window.
                        None => match Client::connect_timeout(addr, Duration::from_millis(100)) {
                            Ok(cl) => client.insert(cl),
                            Err(_) => {
                                out.shed += 1;
                                continue;
                            }
                        },
                    };
                    let t0 = Instant::now();
                    match cl.call(&reqs[(salt as usize).min(1)]) {
                        Ok(Response::Computed { cache_hit, .. }) => {
                            out.completed += 1;
                            out.cache_hits += u64::from(cache_hit);
                            out.latencies_us
                                .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                        }
                        Ok(Response::Rejected { retry_after_ms, .. }) => {
                            out.rejected += 1;
                            if retry_after_ms == 0 {
                                out.errors += 1; // rejection must carry a hint
                            }
                        }
                        Ok(Response::Expired { .. }) => out.expired += 1,
                        // Shed or dropped connection: the designed
                        // overload response. Reconnect on next arrival.
                        Err(WireError::Shed) | Err(WireError::Io { .. }) => {
                            out.shed += 1;
                            client = None;
                        }
                        Ok(_) => out.errors += 1,
                        Err(_) => {
                            protocol_errors.fetch_add(1, Ordering::SeqCst);
                            out.errors += 1;
                            client = None;
                        }
                    }
                }
                out
            }));
        }
        for j in joins {
            let Ok(out) = j.join() else {
                fail("load client thread panicked");
            };
            merged.completed += out.completed;
            merged.rejected += out.rejected;
            merged.expired += out.expired;
            merged.shed += out.shed;
            merged.errors += out.errors;
            merged.cache_hits += out.cache_hits;
            merged.latencies_us.extend(out.latencies_us);
        }
    });
    merged
}

/// Closed-loop leg: every client waits for its response and retries
/// rejections/sheds through `RetryingClient`'s jittered, hint-honouring
/// backoff. Returns (completed, gave_up, retries, sheds).
fn run_closed_loop(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    seed: u64,
) -> (u64, u64, u64, u64) {
    let mut totals = (0u64, 0u64, 0u64, 0u64);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            joins.push(scope.spawn(move || {
                let policy = BackoffPolicy {
                    base_ms: 2,
                    cap_ms: 500,
                    max_attempts: 10,
                };
                let mut rc =
                    RetryingClient::new(addr, policy, seed ^ (c as u64).wrapping_mul(0x9e37));
                let mut completed = 0u64;
                let mut gave_up = 0u64;
                for i in 0..per_client {
                    let salt = u64::from(i % 8 == 0);
                    match rc.call(&workload_request(salt, 0)) {
                        Ok(Response::Computed { .. }) => completed += 1,
                        // Attempts exhausted while the server was still
                        // saturated: a legitimate terminal outcome.
                        Ok(Response::Rejected { .. }) | Ok(Response::Expired { .. }) => {
                            gave_up += 1;
                        }
                        Ok(other) => fail(&format!("closed loop: unexpected response {other:?}")),
                        Err(WireError::Shed) | Err(WireError::Io { .. }) => gave_up += 1,
                        Err(e) => fail(&format!("closed loop: protocol error {e}")),
                    }
                }
                (completed, gave_up, rc.retries(), rc.sheds())
            }));
        }
        for j in joins {
            let Ok((c, g, r, s)) = j.join() else {
                fail("closed-loop client thread panicked");
            };
            totals.0 += c;
            totals.1 += g;
            totals.2 += r;
            totals.3 += s;
        }
    });
    totals
}

// ---------------------------------------------------------------------
// Cluster mode (`--cluster N`): a tme-router front door over N shards.
// ---------------------------------------------------------------------

/// Service-time floor for cluster shards. On the single shared CI core
/// raw compute cannot scale with process count; the floor makes each
/// shard latency-bound (workers park in the floor, emulating the
/// accelerator-offload wait), so aggregate capacity is
/// `shards · workers / floor` and a working router shows near-linear
/// scaling while a broken one cannot.
const CLUSTER_FLOOR_US: u64 = 20_000;
const CLUSTER_WORKERS: usize = 2;

struct ClusterRow {
    shards: u64,
    clients: u64,
    requests: u64,
    completed: u64,
    achieved_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

struct ClusterReport {
    shards: u64,
    distinct_plans: u64,
    rows: Vec<ClusterRow>,
    scaling_x: f64,
    affinity_hit_rate: f64,
    kill_requests: u64,
    kill_completed: u64,
    kill_gave_up: u64,
    rerouted: u64,
    converged: bool,
}

fn cluster_backend() -> ServerHandle {
    match serve(ServeConfig {
        workers: CLUSTER_WORKERS,
        queue_capacity: 32,
        min_service_us: CLUSTER_FLOOR_US,
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => fail(&format!("cluster backend failed to start: {e}")),
    }
}

fn cluster_router(backends: &[&ServerHandle]) -> tme_router::RouterHandle {
    match tme_router::route(RouterConfig {
        shards: backends
            .iter()
            .map(|b| b.local_addr().to_string())
            .collect(),
        health: HealthConfig {
            strikes: 1,
            cooldown: Duration::from_millis(500),
        },
        connect_timeout_ms: 250,
        ..RouterConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => fail(&format!("router failed to start: {e}")),
    }
}

/// Pick `per_shard` alpha salts per shard so the capacity legs offer a
/// perfectly balanced keyspace (the harness is measuring scaling, not
/// hash balance — that has its own property test in `tme-router`), then
/// interleave them shard-round-robin so a client walking the list keeps
/// its in-flight requests spread across shards.
fn balanced_cluster_salts(shards: usize, per_shard: usize) -> Vec<u64> {
    let all: Vec<usize> = (0..shards).collect();
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for salt in 0..4_096u64 {
        if buckets.iter().all(|b| b.len() >= per_shard) {
            break;
        }
        let Some(home) = pick_shard(route_key(&workload_request(salt, 0)), &all) else {
            fail("rendezvous over a non-empty shard set returned nothing")
        };
        if buckets[home].len() < per_shard {
            buckets[home].push(salt);
        }
    }
    if buckets.iter().any(|b| b.len() < per_shard) {
        fail("could not find a balanced cluster keyspace in 4096 candidates");
    }
    (0..per_shard)
        .flat_map(|i| buckets.iter().map(move |b| b[i]))
        .collect()
}

struct ClusterLeg {
    requests: u64,
    completed: u64,
    gave_up: u64,
    lost: u64,
    elapsed_s: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Closed-loop saturation through the router: `clients` concurrent
/// connections, each walking the (shard-interleaved) salt list from its
/// own offset. Every request must reach a typed terminal outcome —
/// anything else counts as `lost`.
fn cluster_closed_loop(
    addr: std::net::SocketAddr,
    salts: &[u64],
    clients: usize,
    per_client: usize,
    seed: u64,
) -> ClusterLeg {
    let start = Instant::now();
    let mut leg = ClusterLeg {
        requests: (clients * per_client) as u64,
        completed: 0,
        gave_up: 0,
        lost: 0,
        elapsed_s: 0.0,
        p50_us: 0,
        p99_us: 0,
    };
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            joins.push(scope.spawn(move || {
                let policy = BackoffPolicy {
                    base_ms: 2,
                    cap_ms: 50,
                    max_attempts: 12,
                };
                let mut rc =
                    RetryingClient::new(addr, policy, seed ^ (c as u64).wrapping_mul(0x9e37));
                let mut out = (0u64, 0u64, 0u64, Vec::new());
                for k in 0..per_client {
                    let salt = salts[(c + k) % salts.len()];
                    let t0 = Instant::now();
                    match rc.call(&workload_request(salt, 0)) {
                        Ok(Response::Computed { .. }) => {
                            out.0 += 1;
                            out.3
                                .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                        }
                        Ok(Response::Rejected { .. }) | Ok(Response::Expired { .. }) => out.1 += 1,
                        Ok(_) | Err(_) => out.2 += 1,
                    }
                }
                out
            }));
        }
        for j in joins {
            let Ok((completed, gave_up, lost, lats)) = j.join() else {
                fail("cluster client thread panicked");
            };
            leg.completed += completed;
            leg.gave_up += gave_up;
            leg.lost += lost;
            latencies.extend(lats);
        }
    });
    leg.elapsed_s = start.elapsed().as_secs_f64().max(1e-6);
    latencies.sort_unstable();
    leg.p50_us = percentile(&latencies, 0.50);
    leg.p99_us = percentile(&latencies, 0.99);
    leg
}

/// Plant every salt's plan once, sequentially, so the timed legs never
/// race two workers into building the same plan (which would double-count
/// misses in the affinity ledger).
fn cluster_warm(addr: std::net::SocketAddr, salts: &[u64]) {
    let mut client = RetryingClient::new(addr, BackoffPolicy::default(), 0x77AB);
    for &salt in salts {
        if !matches!(
            client.call(&workload_request(salt, 0)),
            Ok(Response::Computed { .. })
        ) {
            fail("cluster warm-up request failed");
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_cluster(shards: usize, quick: bool, seed: u64) -> ClusterReport {
    let clients = 6 * shards;
    let per_client = if quick { 8 } else { 20 };
    let salts = balanced_cluster_salts(shards, 4);
    println!(
        "# cluster: {shards} shards x {CLUSTER_WORKERS} workers, {} µs service floor, \
         {} balanced configurations, {clients} closed-loop clients",
        CLUSTER_FLOOR_US,
        salts.len()
    );

    // Leg 1: capacity through the router over a single shard.
    let solo = cluster_backend();
    let solo_router = cluster_router(&[&solo]);
    cluster_warm(solo_router.local_addr(), &salts);
    let one = cluster_closed_loop(solo_router.local_addr(), &salts, clients, per_client, seed);
    solo_router.join();
    solo.trigger_drain();
    solo.join();
    if one.lost > 0 {
        fail(&format!("{} requests lost in the 1-shard leg", one.lost));
    }
    println!(
        "cluster 1 shard:  {}/{} completed in {:.2} s -> {:.0} rps (p50 {} µs, p99 {} µs)",
        one.completed,
        one.requests,
        one.elapsed_s,
        one.completed as f64 / one.elapsed_s,
        one.p50_us,
        one.p99_us
    );

    // Leg 2: same offered pattern over N shards.
    let mut backends: Vec<Option<ServerHandle>> =
        (0..shards).map(|_| Some(cluster_backend())).collect();
    let refs: Vec<&ServerHandle> = backends.iter().map(|b| b.as_ref().expect("live")).collect();
    let router = cluster_router(&refs);
    let addr = router.local_addr();
    cluster_warm(addr, &salts);
    let many = cluster_closed_loop(addr, &salts, clients, per_client, seed ^ 0x5EED);
    if many.lost > 0 {
        fail(&format!(
            "{} requests lost in the {shards}-shard leg",
            many.lost
        ));
    }
    let achieved_1 = one.completed as f64 / one.elapsed_s;
    let achieved_n = many.completed as f64 / many.elapsed_s;
    let scaling = achieved_n / achieved_1.max(1e-9);
    let scaling_gate = 0.8 * shards as f64;
    println!(
        "cluster {shards} shards: {}/{} completed in {:.2} s -> {:.0} rps (p50 {} µs, p99 {} µs) \
         = {scaling:.2}x the 1-shard row",
        many.completed, many.requests, many.elapsed_s, achieved_n, many.p50_us, many.p99_us
    );
    if scaling < scaling_gate {
        fail(&format!(
            "capacity scaling {scaling:.2}x at {shards} shards below the {scaling_gate:.1}x gate \
             — the router is not spreading load"
        ));
    }

    // Affinity ledger, before the kill disturbs it: every repeat of an
    // already-planted configuration must hit the plan cache on whichever
    // shard rendezvous pinned it to.
    let (mut hits, mut misses) = (0u64, 0u64);
    for b in &refs {
        let s = b.stats();
        hits += s.cache_hits;
        misses += s.cache_misses;
    }
    let distinct = salts.len() as u64;
    let repeats = (hits + misses).saturating_sub(distinct);
    let affinity = if repeats == 0 {
        0.0
    } else {
        hits as f64 / repeats as f64
    };
    println!(
        "cluster affinity: {hits} hits / {misses} misses over {distinct} distinct plans \
         -> {:.1}% repeat hit rate",
        100.0 * affinity
    );
    if affinity < 0.95 {
        fail(&format!(
            "plan-cache affinity {:.1}% below the 95% gate — routing is not sticky",
            100.0 * affinity
        ));
    }

    // Leg 3: drain one shard mid-load. Every admitted request must still
    // terminate with a typed response — failover, not loss.
    let victim = 1usize.min(shards - 1);
    let kill_per_client = if quick { 6 } else { 10 };
    let mut kill = ClusterLeg {
        requests: 0,
        completed: 0,
        gave_up: 0,
        lost: 0,
        elapsed_s: 0.0,
        p50_us: 0,
        p99_us: 0,
    };
    std::thread::scope(|scope| {
        let salts = &salts;
        let load = scope.spawn(move || {
            cluster_closed_loop(addr, salts, clients, kill_per_client, seed ^ 0x13111)
        });
        std::thread::sleep(Duration::from_millis(250));
        let dead = backends[victim].take().expect("victim still alive");
        dead.trigger_drain();
        dead.join();
        match load.join() {
            Ok(leg) => kill = leg,
            Err(_) => fail("kill-leg load thread panicked"),
        }
    });
    println!(
        "cluster kill: drained shard {victim} mid-load; {}/{} completed, {} gave up, {} lost",
        kill.completed, kill.requests, kill.gave_up, kill.lost
    );
    if kill.lost > 0 {
        fail(&format!(
            "{} admitted requests lost across the shard kill",
            kill.lost
        ));
    }
    if kill.completed + kill.gave_up != kill.requests {
        fail("kill-leg accounting does not cover every request");
    }
    if kill.gave_up > 0 {
        fail(&format!(
            "{} requests exhausted their retries across the shard kill — failover is too slow",
            kill.gave_up
        ));
    }

    // Deterministic convergence: fresh keys land exactly where rendezvous
    // over the survivor set says, and the dead shard sees nothing.
    let survivors: Vec<usize> = (0..shards).filter(|&s| s != victim).collect();
    let before = router.stats();
    let mut expected = vec![0u64; shards];
    let mut client = RetryingClient::new(addr, BackoffPolicy::default(), seed ^ 0xC0);
    for salt in 200..212u64 {
        let req = workload_request(salt, 0);
        match pick_shard(route_key(&req), &survivors) {
            Some(s) => expected[s] += 1,
            None => fail("rendezvous over the survivors returned nothing"),
        }
        if !matches!(client.call(&req), Ok(Response::Computed { .. })) {
            fail("post-kill request did not complete");
        }
    }
    let after = router.stats();
    let mut converged = after.shards[victim].forwarded == before.shards[victim].forwarded;
    for s in &survivors {
        converged &= after.shards[*s].forwarded - before.shards[*s].forwarded == expected[*s];
    }
    if !converged {
        fail("post-kill keyspace did not converge to the rendezvous prediction");
    }
    println!("cluster convergence: 12 fresh keys landed exactly on their rendezvous survivors");

    let stats = router.join();
    if stats.protocol_errors > 0 {
        fail(&format!("{} router protocol errors", stats.protocol_errors));
    }
    for b in backends.into_iter().flatten() {
        b.trigger_drain();
        b.join();
    }

    ClusterReport {
        shards: shards as u64,
        distinct_plans: distinct,
        rows: vec![
            ClusterRow {
                shards: 1,
                clients: clients as u64,
                requests: one.requests,
                completed: one.completed,
                achieved_rps: achieved_1,
                p50_us: one.p50_us,
                p99_us: one.p99_us,
            },
            ClusterRow {
                shards: shards as u64,
                clients: clients as u64,
                requests: many.requests,
                completed: many.completed,
                achieved_rps: achieved_n,
                p50_us: many.p50_us,
                p99_us: many.p99_us,
            },
        ],
        scaling_x: scaling,
        affinity_hit_rate: affinity,
        kill_requests: kill.requests,
        kill_completed: kill.completed,
        kill_gave_up: kill.gave_up,
        rerouted: stats.rerouted,
        converged,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    tme_bench::init_cli();
    let mut args = Args::parse();
    let quick = args.flag("--quick");
    let workers: usize = args.get("--workers", 2);
    let queue: usize = args.get("--queue", 8);
    let cost_budget: u64 = args.get("--cost-budget", 32_768);
    let cluster: usize = args.get("--cluster", 0);
    let seed: u64 = args.get("--seed", 42);
    if cluster == 1 {
        fail("--cluster needs at least 2 shards (omit it for the single-server suite)");
    }
    let out_path = args
        .opt("--out")
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    args.finish();
    let duration_s = if quick { 1.0 } else { 3.0 };
    // Enough serial connections that the in-flight count can exceed
    // workers + queue capacity — otherwise the queue can never fill and
    // backpressure would go untested.
    let clients = workers + queue + 4;

    let handle = match serve(ServeConfig {
        workers,
        queue_capacity: queue,
        cost_budget,
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => fail(&format!("server failed to start: {e}")),
    };
    let addr = handle.local_addr();
    println!(
        "# serve_load: server on {addr}, {workers} workers, queue {queue}, \
         cost budget {cost_budget}, seed {seed}"
    );

    // 1. Plan-cache demo: second identical config must hit, same bits.
    let mut probe = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => fail(&format!("could not connect: {e}")),
    };
    let (e1, hit1) = match probe.call(&workload_request(0, 0)) {
        Ok(Response::Computed {
            energy, cache_hit, ..
        }) => (energy, cache_hit),
        other => fail(&format!("probe compute failed: {other:?}")),
    };
    let (e2, hit2) = match probe.call(&workload_request(0, 0)) {
        Ok(Response::Computed {
            energy, cache_hit, ..
        }) => (energy, cache_hit),
        other => fail(&format!("probe compute failed: {other:?}")),
    };
    if hit1 || !hit2 {
        fail(&format!(
            "plan cache broken: first hit={hit1} (want miss), second hit={hit2} (want hit)"
        ));
    }
    if e1.to_bits() != e2.to_bits() {
        fail("cache hit changed the energy bits");
    }
    println!("plan cache: miss then hit, energy bitwise identical ({e1:.6})");

    // 2. Capacity probe: median sequential service time.
    let probe_n = if quick { 10 } else { 30 };
    let mut service_us: Vec<u64> = Vec::new();
    for _ in 0..probe_n {
        let t0 = Instant::now();
        if !matches!(
            probe.call(&workload_request(0, 0)),
            Ok(Response::Computed { .. })
        ) {
            fail("capacity probe request failed");
        }
        service_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    service_us.sort_unstable();
    let median_us = service_us[service_us.len() / 2].max(50);
    let capacity_rps = (workers as f64) * 1e6 / median_us as f64;
    println!("capacity probe: median service {median_us} µs -> ~{capacity_rps:.0} rps capacity");

    // 3. Open-loop overload ramp at four offered loads.
    let protocol_errors = AtomicU64::new(0);
    let mut rows: Vec<LoadRow> = Vec::new();
    let factors = [0.5, 1.0, 2.5, 5.0];
    for (li, factor) in factors.into_iter().enumerate() {
        let offered_rps = (capacity_rps * factor).clamp(4.0, 10_000.0);
        let t0 = Instant::now();
        let out = run_load(
            addr,
            offered_rps,
            duration_s,
            clients,
            0,
            seed ^ ((li as u64 + 1) << 32),
            &protocol_errors,
        );
        let elapsed = t0.elapsed().as_secs_f64().max(1e-6);
        let mut lat = out.latencies_us.clone();
        lat.sort_unstable();
        let submitted = out.completed + out.rejected + out.expired + out.shed + out.errors;
        let row = LoadRow {
            offered_rps,
            achieved_rps: out.completed as f64 / elapsed,
            completed: out.completed,
            rejected: out.rejected,
            expired: out.expired,
            shed: out.shed,
            rejection_rate: if submitted == 0 {
                0.0
            } else {
                (out.rejected + out.shed) as f64 / submitted as f64
            },
            cache_hit_rate: if out.completed == 0 {
                0.0
            } else {
                out.cache_hits as f64 / out.completed as f64
            },
            p50_us: percentile(&lat, 0.50),
            p99_us: percentile(&lat, 0.99),
        };
        println!(
            "load {factor:>3}x: offered {:.0} rps, achieved {:.0} rps, {} completed / {} \
             rejected / {} shed / {} expired, p50 {} µs, p99 {} µs, cache hit {:.1}%",
            row.offered_rps,
            row.achieved_rps,
            row.completed,
            row.rejected,
            row.shed,
            row.expired,
            row.p50_us,
            row.p99_us,
            100.0 * row.cache_hit_rate
        );
        if out.errors > 0 {
            fail(&format!(
                "{} client-side errors at load {factor}x",
                out.errors
            ));
        }
        rows.push(row);
    }

    // The goodput gate: overload must not melt throughput. Achieved rps
    // at 2.5× offered load must stay within 15% of the 1× row — the
    // shed-before-decode path has to keep reject work off the CPU the
    // workers need (DESIGN.md §16.1).
    let achieved_1x = rows[1].achieved_rps;
    let achieved_over = rows[2].achieved_rps;
    if achieved_over < 0.85 * achieved_1x {
        fail(&format!(
            "goodput collapse: {achieved_over:.0} rps at 2.5x vs {achieved_1x:.0} rps at 1x \
             (gate: >= 85%)"
        ));
    }
    println!(
        "goodput gate: 2.5x achieved {achieved_over:.0} rps >= 85% of 1x {achieved_1x:.0} rps"
    );
    if rows[3].rejected + rows[3].shed == 0 {
        fail("5x overload produced zero rejections or sheds — backpressure is not engaging");
    }

    // 4. Tight-deadline leg: 2.5× load with deadlines a small multiple
    // of the median service time, so queue wait alone kills requests.
    // The server's expired counter must move, and expired work must
    // never execute (covered by tests/serve_overload.rs; here we check
    // the live counters).
    let tight_deadline_ms = (median_us.saturating_mul(3) / 1000).max(2);
    let before = handle.stats();
    let tight = run_load(
        addr,
        (capacity_rps * 2.5).clamp(4.0, 10_000.0),
        duration_s,
        clients,
        tight_deadline_ms,
        seed ^ (0xDEAD << 32),
        &protocol_errors,
    );
    let after = handle.stats();
    let expired_delta = after.expired.saturating_sub(before.expired);
    println!(
        "tight-deadline leg ({tight_deadline_ms} ms): {} completed / {} rejected / {} shed / \
         {} expired (server expired delta {expired_delta})",
        tight.completed, tight.rejected, tight.shed, tight.expired
    );
    if tight.errors > 0 {
        fail(&format!(
            "{} client-side errors in the tight-deadline leg",
            tight.errors
        ));
    }
    if expired_delta == 0 || tight.expired == 0 {
        fail(&format!(
            "tight-deadline leg expired nothing (server delta {expired_delta}, client {}) — \
             deadline enforcement is not engaging",
            tight.expired
        ));
    }

    // 5. Closed-loop backoff leg: RetryingClients that honour the
    // adaptive retry_after_ms hint. Zero protocol errors allowed.
    let per_client = if quick { 10 } else { 40 };
    let (cl_completed, cl_gave_up, cl_retries, cl_sheds) =
        run_closed_loop(addr, clients, per_client, seed ^ 0xC105ED);
    let cl_total = (clients * per_client) as u64;
    println!(
        "closed loop: {cl_completed}/{cl_total} completed, {cl_gave_up} gave up, \
         {cl_retries} backoffs, {cl_sheds} sheds"
    );
    if cl_completed + cl_gave_up != cl_total {
        fail("closed-loop accounting lost a request");
    }
    if cl_completed == 0 {
        fail("closed-loop clients completed nothing — backoff is not recovering");
    }

    // 6. Drain and final bookkeeping.
    handle.trigger_drain();
    let stats = handle.join();
    println!("--- final server stats ---\n{stats}");

    let proto_errs = protocol_errors.load(Ordering::SeqCst) + stats.protocol_errors;
    if proto_errs > 0 {
        fail(&format!("{proto_errs} protocol errors"));
    }
    if stats.queue_max_depth > queue as u64 {
        fail(&format!(
            "queue grew to {} beyond its capacity {queue}",
            stats.queue_max_depth
        ));
    }
    let answered = stats.completed + stats.rejected + stats.expired + stats.server_errors;
    let work_received = stats.kinds.compute + stats.kinds.nve_run + stats.kinds.estimate;
    if answered != work_received {
        fail(&format!(
            "drain lost requests: {work_received} work requests received, {answered} answered"
        ));
    }
    if stats.outstanding_cost != 0 {
        fail(&format!(
            "admission ledger leak: {} cost units outstanding after drain",
            stats.outstanding_cost
        ));
    }
    if stats.admitted_cost != stats.released_cost {
        fail(&format!(
            "admission ledger imbalance: {} admitted vs {} released",
            stats.admitted_cost, stats.released_cost
        ));
    }
    if quick {
        let p99 = rows.iter().map(|r| r.p99_us).max().unwrap_or(0);
        if p99 > 2_000_000 {
            fail(&format!("p99 {p99} µs exceeds the 2 s quick-mode bound"));
        }
    }
    println!(
        "drain: all {work_received} work requests answered; queue high-water {} <= {queue}; \
         cost ledger balanced ({} admitted = released)",
        stats.queue_max_depth, stats.admitted_cost
    );

    // 7. Cluster legs (opt-in): router + N floored shards.
    let cluster_report = (cluster >= 2).then(|| run_cluster(cluster, quick, seed));

    let json = tme_bench::json::report("serve_load", |o| {
        o.u64("seed", seed)
            .u64("workers", workers as u64)
            .u64("queue_capacity", queue as u64)
            .u64("cost_budget", cost_budget)
            .bool("quick", quick)
            .f64("capacity_probe_rps", capacity_rps, 1)
            .u64("median_service_us", median_us)
            .u64("protocol_errors", proto_errs)
            .u64("queue_max_depth", stats.queue_max_depth)
            .u64("shed_connections", stats.shed_connections)
            .u64("rejected_before_decode", stats.rejected_before_decode)
            .f64("overall_cache_hit_rate", stats.cache_hit_rate(), 4)
            .rows("rows", &rows, |r, row| {
                row.f64("offered_rps", r.offered_rps, 1)
                    .f64("achieved_rps", r.achieved_rps, 1)
                    .u64("completed", r.completed)
                    .u64("rejected", r.rejected)
                    .u64("shed", r.shed)
                    .u64("expired", r.expired)
                    .f64("rejection_rate", r.rejection_rate, 4)
                    .f64("cache_hit_rate", r.cache_hit_rate, 4)
                    .u64("p50_us", r.p50_us)
                    .u64("p99_us", r.p99_us);
            })
            .u64("tight_deadline_ms", tight_deadline_ms)
            .u64("tight_deadline_client_expired", tight.expired)
            .u64("tight_deadline_server_expired_delta", expired_delta)
            .u64("closed_loop_requests", cl_total)
            .u64("closed_loop_completed", cl_completed)
            .u64("closed_loop_gave_up", cl_gave_up)
            .u64("closed_loop_retries", cl_retries)
            .u64("closed_loop_sheds", cl_sheds);
        if let Some(c) = &cluster_report {
            o.u64("cluster_shards", c.shards)
                .u64("cluster_floor_us", CLUSTER_FLOOR_US)
                .u64("cluster_distinct_plans", c.distinct_plans)
                .rows("cluster_rows", &c.rows, |r, row| {
                    row.u64("shards", r.shards)
                        .u64("clients", r.clients)
                        .u64("requests", r.requests)
                        .u64("completed", r.completed)
                        .f64("achieved_rps", r.achieved_rps, 1)
                        .u64("p50_us", r.p50_us)
                        .u64("p99_us", r.p99_us);
                })
                .f64("cluster_scaling_x", c.scaling_x, 2)
                .f64("cluster_affinity_hit_rate", c.affinity_hit_rate, 4)
                .u64("cluster_kill_requests", c.kill_requests)
                .u64("cluster_kill_completed", c.kill_completed)
                .u64("cluster_kill_gave_up", c.kill_gave_up)
                .u64("cluster_rerouted", c.rerouted)
                .bool("cluster_converged", c.converged);
        }
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
