//! §VI.A — estimated long-range cost with a 64³ grid (L = 2): the GCU
//! operations scale ×8 (72 µs), grid transfers add ~10 µs, and the total
//! long-range term reaches ~150 µs.
//!
//! Usage: `cargo run -p tme-bench --bin grid64_estimate`

use mdgrape_sim::timechart::render_long_range;
use mdgrape_sim::{simulate_step, MachineConfig, StepWorkload};

fn main() {
    tme_bench::init_cli();
    let cfg = MachineConfig::mdgrape4a();
    let w32 = StepWorkload::paper_fig9();
    let w64 = StepWorkload::paper_grid64();
    let r32 = simulate_step(&cfg, &w32);
    let r64 = simulate_step(&cfg, &w64);

    println!("# §VI.A: 32³ (L=1) vs 64³ (L=2) long-range cost (simulated)");
    for (name, r) in [("32³ L=1", &r32), ("64³ L=2", &r64)] {
        println!("\n== {name} ==");
        print!("{}", render_long_range(r));
        println!("step total: {:.1} µs", r.total_us);
    }
    let conv32 = r32.phase("convolution L1").unwrap();
    let conv64 = r64.phase("convolution L1").unwrap();
    println!(
        "\nGCU level-1 convolution scaling: {:.2}x  (paper: x8 theoretically)",
        conv64 / conv32
    );
    println!(
        "long-range total: {:.1} µs -> {:.1} µs  (paper estimate: ~50 µs -> ~150 µs)",
        r32.long_range_us(),
        r64.long_range_us()
    );
}
