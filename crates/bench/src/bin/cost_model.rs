//! §III.C — computational and communication costs of the level-1 grid
//! kernel convolution: B-spline MSM (direct 3-D) vs TME (separable 1-D).
//!
//! Reproduces the paper's formulas
//!
//! ```text
//! compute:  MSM (2g_c+1)³(N_x/P_x)³      TME (2g_c+1)(N_x/P_x)³·M  (per axis)
//! comm:     MSM (8+12γ+6γ²)g_c³          TME (2+4M)γ²g_c³          (γ = (N_x/P_x)/g_c)
//! ```
//!
//! and *measures* both evaluation orders on the same tensor kernel to
//! validate the ratio (the paper's design-choice ablation).
//!
//! Usage: `cargo run -p tme-bench --bin cost_model --release`

use std::time::Instant;
use tme_bench::water_system;
use tme_core::convolve::convolve_separable;
use tme_core::kernel::TensorKernel;
use tme_core::msm::Msm;
use tme_core::shells::GaussianFit;
use tme_core::{alpha_from_rtol, Tme, TmeParams};
use tme_mesh::model::relative_force_error;
use tme_mesh::Grid3;
use tme_reference::msm::{
    convolve_direct, direct_op_count, msm_comm_words, separable_op_count, tme_comm_words,
    DenseKernel,
};

fn main() {
    tme_bench::init_cli();
    let gc = 8u64;
    let m = 4u64;
    println!("# §III.C cost model, g_c = {gc}, M = {m} (MDGRAPE-4A settings)");
    println!("# N_x/P_x  gamma   MSM madds    TME madds   ratio | MSM comm    TME comm   ratio");
    for &local in &[4u64, 8] {
        let gamma = local as f64 / gc as f64;
        let pts = local * local * local;
        let msm_c = direct_op_count(pts, gc);
        let tme_c = separable_op_count(pts, gc, m);
        let msm_w = msm_comm_words(gamma, gc);
        let tme_w = tme_comm_words(gamma, gc, m);
        println!(
            "{local:8}  {gamma:5.2}  {msm_c:10}  {tme_c:10}  {:6.2} | {msm_w:10.0}  {tme_w:10.0}  {:6.2}",
            msm_c as f64 / tme_c as f64,
            msm_w / tme_w
        );
    }

    println!("#\n# measured wall time, same rank-{m} tensor kernel, both evaluation orders");
    let fit = GaussianFit::new(2.2936, m as usize); // α(r_c = 1.2 nm)
    for &n in &[16usize, 32] {
        let h = 9.9727 / n as f64;
        let kernel = TensorKernel::new(&fit, [h; 3], 6, gc as usize);
        let mut q = Grid3::zeros([n; 3]);
        for (i, v) in q.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 31 % 97) as f64 - 48.0) * 0.01;
        }
        let t0 = Instant::now();
        let (sep, stats) = convolve_separable(&q, &kernel, 1.0);
        let t_sep = t0.elapsed().as_secs_f64();
        let dense = DenseKernel::from_fn(gc as usize, |off| kernel.dense_value(off));
        let t1 = Instant::now();
        let direct = convolve_direct(&dense, &q);
        let t_dir = t1.elapsed().as_secs_f64();
        // Sanity: identical results.
        let max_diff = sep
            .as_slice()
            .iter()
            .zip(direct.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "N = {n:3}^3: separable {:8.1} ms ({} madds)   direct {:8.1} ms ({} madds)   speedup {:5.1}x   max|diff| {max_diff:.2e}",
            t_sep * 1e3,
            stats.madds,
            t_dir * 1e3,
            direct_op_count((n * n * n) as u64, gc),
            t_dir / t_sep
        );
    }
    println!("#\n# Expected shape: TME wins on both compute and communication at the");
    println!("# paper's parameters; the wall-time speedup tracks the madds ratio.");

    // End-to-end: the full B-spline MSM solver vs the TME on the same
    // water system — the two methods the §III.C analysis contrasts.
    println!("#\n# end-to-end solvers on a 1,000-water box (same α, p, N, g_c):");
    let sys = water_system(1000, 77);
    let r_cut = 1.0;
    let params = TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 8,
        m_gaussians: 4,
        alpha: alpha_from_rtol(r_cut, 1e-4),
        r_cut,
    };
    let tme = Tme::new(params, sys.box_l);
    let msm = Msm::new(params, sys.box_l);
    let t0 = Instant::now();
    let (tme_out, tme_stats) = tme.long_range(&sys);
    let t_tme = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (msm_out, msm_stats) = msm.long_range(&sys);
    let t_msm = t1.elapsed().as_secs_f64();
    let diff = relative_force_error(&tme_out.forces, &msm_out.forces);
    println!(
        "TME  long-range: {:7.1} ms  ({:>9} conv madds)",
        t_tme * 1e3,
        tme_stats.convolution.madds
    );
    println!(
        "MSM  long-range: {:7.1} ms  ({:>9} conv madds)   TME speedup {:.1}x",
        t_msm * 1e3,
        msm_stats.madds,
        t_msm / t_tme
    );
    println!("force agreement TME vs MSM: {diff:.3e} (same shells, rank-M vs exact kernel)");
}
