//! Table 1 — relative force errors of SPME and TME (L = 1) against the
//! direct Ewald reference, for r_c ∈ {1, 1.25, 1.5} nm, g_c ∈ {4, 8, 12},
//! M ∈ {1..4}, p = 6, with α from erfc(α r_c) = 1e-4.
//!
//! The paper uses 32,773 TIP3P waters (98,319 atoms, L = 9.9727 nm, 32³
//! grid). The default here is the geometry-similar half-edge box (4,142
//! waters, L ≈ 4.99 nm, 16³ grid — same grid spacing h and same α(r_c),
//! hence the same accuracy regime) so the reference Ewald sum finishes in
//! ~a minute on one core. `--full` runs the paper-size box.
//!
//! Usage:
//!   cargo run -p tme-bench --bin table1 --release [--waters N] [--full]

use std::time::Instant;
use tme_bench::{arg_flag, arg_or, grid_for_box, relaxed_water_system};
use tme_core::{Tme, TmeParams};
use tme_mesh::model::{relative_force_error, CoulombResult};
use tme_num::vec3::V3;
use tme_reference::ewald::{Ewald, EwaldParams};
use tme_reference::{pairwise, Spme};

fn add(a: &[V3], b: &[V3]) -> Vec<V3> {
    a.iter()
        .zip(b)
        .map(|(x, y)| [x[0] + y[0], x[1] + y[1], x[2] + y[2]])
        .collect()
}

fn main() {
    tme_bench::init_cli();
    let n_waters: usize = if arg_flag("--full") {
        32_773
    } else {
        arg_or("--waters", 4_142)
    };
    let relax_steps: usize = arg_or("--relax", 200);
    let t_relax = Instant::now();
    let sys = relaxed_water_system(n_waters, 2021, relax_steps);
    eprintln!(
        "[box built + {relax_steps} relaxation steps in {:.1} s]",
        t_relax.elapsed().as_secs_f64()
    );
    let box_edge = sys.box_l[0];
    let n_grid = grid_for_box(box_edge);
    println!(
        "# Table 1: {} waters ({} atoms), L = {:.5} nm, N = {n_grid}^3, p = 6",
        n_waters,
        sys.len(),
        box_edge
    );
    println!("# (paper: 32,773 waters, L = 9.9727 nm, N = 32^3; run with --full to match)");

    let r_cuts = [1.0, 1.25, 1.5];
    let gcs = [4usize, 8, 12];
    let ms = [1usize, 2, 3, 4];

    // Reference forces: direct Ewald at < 1e-15 theoretical force error.
    let t0 = Instant::now();
    let reference = Ewald::new(EwaldParams::reference_quality(sys.box_l, 1e-15));
    println!(
        "# reference Ewald: alpha = {:.6} nm^-1, r_c = {:.4} nm, n_c = {}",
        reference.params.alpha, reference.params.r_cut, reference.params.n_cut
    );
    let ref_forces = reference.compute(&sys).forces;
    eprintln!(
        "[reference Ewald done in {:.1} s]",
        t0.elapsed().as_secs_f64()
    );

    println!("#\n# method  g_c  M   rc=1.00        rc=1.25        rc=1.50");
    let mut spme_row = vec![0.0f64; r_cuts.len()];
    let mut tme_rows: Vec<(usize, usize, Vec<f64>)> = Vec::new();
    for (ri, &r_cut) in r_cuts.iter().enumerate() {
        if 2.0 * r_cut >= box_edge {
            eprintln!("[rc={r_cut}: skipped — box edge {box_edge:.3} nm < 2 rc; use more waters]");
            continue;
        }
        let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
        // Short-range + self terms are shared by SPME and TME.
        let short = pairwise::short_range(&sys, alpha, r_cut);
        let selfs: CoulombResult = pairwise::self_term(&sys, alpha);
        let base = add(&short.forces, &selfs.forces);

        let spme = Spme::new([n_grid; 3], sys.box_l, alpha, 6, r_cut);
        let mesh = spme.reciprocal(&sys);
        spme_row[ri] = relative_force_error(&add(&base, &mesh.forces), &ref_forces);
        eprintln!("[rc={r_cut}: SPME done, err {:.3e}]", spme_row[ri]);

        for &gc in &gcs {
            for &m in &ms {
                let params = TmeParams {
                    n: [n_grid; 3],
                    p: 6,
                    levels: 1,
                    gc,
                    m_gaussians: m,
                    alpha,
                    r_cut,
                };
                let tme = Tme::new(params, sys.box_l);
                let (mesh, _) = tme.long_range(&sys);
                let err = relative_force_error(&add(&base, &mesh.forces), &ref_forces);
                match tme_rows.iter_mut().find(|(g, mm, _)| *g == gc && *mm == m) {
                    Some((_, _, row)) => row.push(err),
                    None => tme_rows.push((gc, m, vec![err])),
                }
            }
        }
        eprintln!("[rc={r_cut}: TME sweep done]");
    }

    print!("SPME      -  -  ");
    for e in &spme_row {
        print!("  {e:12.3e}");
    }
    println!();
    for (gc, m, row) in &tme_rows {
        print!("TME      {gc:2} {m:2}  ");
        for e in row {
            print!("  {e:12.3e}");
        }
        println!();
    }
    println!("#\n# Expected shape (paper Table 1): M=1 clearly worse; M=3≈M=4 (converged);");
    println!("# g_c=8 ≈ g_c=12, with g_c=4 visibly worse at rc=1.5; TME(M>=3, g_c>=8) ≈ SPME.");
}
