//! §VI.B what-if study: the paper's proposed next-generation improvements
//! applied to the simulated machine, one at a time and combined.
//!
//! Usage: `cargo run -p tme-bench --bin nextgen`

use mdgrape_sim::nextgen::evaluate;
use mdgrape_sim::report::us_per_day;
use mdgrape_sim::{MachineConfig, StepWorkload};

fn main() {
    tme_bench::init_cli();
    let base = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    println!("# §VI.B next-generation variants on the Fig. 9 workload");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "variant", "step (µs)", "long-range", "µs/day"
    );
    for (name, step, lr) in evaluate(&base, &w) {
        println!(
            "{name:<28} {step:>10.1} {lr:>12.1} {:>10.2}",
            us_per_day(step, 2.5)
        );
    }
    println!("#\n# paper §VI.B: GP performance is the major overall bottleneck; the");
    println!("# long-range term is 'more difficult' to scale — visible here as the");
    println!("# long-range time barely moving under the GP upgrade.");
}
