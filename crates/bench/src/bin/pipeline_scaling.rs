//! Thread-scaling and allocation audit of the plan/execute pipeline.
//!
//! Runs the full zero-allocation `Tme::compute_with` path and the bare
//! separable convolution at 1/2/4/8 threads, checks the forces stay
//! bitwise identical at every thread count, and writes the timings to
//! `BENCH_pipeline.json` (via `tme_bench::json` — the workspace has no
//! serialisation dependency). With `--features alloc-count` the
//! steady-state allocation count per call is measured and reported too
//! (it must be 0).
//!
//! Timing statistic: `--warmup` uncounted calls, then the **minimum** of
//! `--repeats` timed calls. The workload is deterministic, so every
//! sample is the true cost plus non-negative scheduler/cache noise and
//! the minimum is the robust estimate (medians left the committed rows
//! so noisy that 8 threads "beat" 4 on identical work). The per-stage
//! breakdown is captured from the repeat that achieved the minimum, so
//! `stages_us.total` agrees with `compute_us`.
//!
//! Two row families share this machinery: the default scaled box
//! (`--waters`, 512 → 1536 atoms on a 32³-ish grid) and, with
//! `--paper-waters N`, the paper's Table 1 geometry (32,773 waters /
//! 98,319 atoms in a 9.97 nm box) reported under the `paper_box` key —
//! the configuration the serve cost model is calibrated against. The
//! report records `host_threads` (the machine's available parallelism)
//! so speedup columns can be read in context: on a single-core CI runner
//! every multi-thread row necessarily sits near 1×.
//!
//! With `--baseline <json>` the single-thread `compute_us` (and the
//! short-range stage) of each family present in the committed
//! `BENCH_pipeline.json` is compared and the run fails (non-zero exit)
//! on a regression beyond 15% — the CI smoke gate.
//!
//! The report also carries one row per long-range backend (DESIGN.md
//! §14) at a matched 5e-4 force-error target against the pairwise Ewald
//! oracle: each backend's grid size is the smallest that meets the
//! target, and the row records grid points, measured force error and
//! `compute_us`. The `pswf_demo` object pins the PSWF acceptance claim
//! (equal-or-better accuracy than the B-spline window on the same
//! marginal grid, meeting the target with 8× fewer grid points) and the
//! run fails if it stops holding. `--backend <name>` restricts the
//! table to one backend (the CI backend matrix).
//!
//! Usage: `cargo run --release -p tme-bench --bin pipeline_scaling --
//!         [--waters 512] [--repeats 20] [--warmup 2]
//!         [--paper-waters 32773] [--paper-repeats 3]
//!         [--out BENCH_pipeline.json] [--baseline BENCH_pipeline.json]
//!         [--backend spme-pswf]`

use std::sync::Arc;
use std::time::Instant;

use tme_bench::args::Args;
use tme_bench::{grid_for_box, water_system};
use tme_core::convolve::{convolve_separable_into, ConvolveScratch, FoldedKernels};
use tme_core::kernel::TensorKernel;
use tme_core::shells::GaussianFit;
use tme_core::{Tme, TmeParams, TmeStageTimings, TmeWorkspace};
use tme_md::backend::{plan_backend, BackendParams, PswfParams, SpmeParams};
use tme_mesh::model::relative_force_error;
use tme_mesh::{CoulombResult, CoulombSystem, Grid3};
use tme_num::pool::Pool;
use tme_reference::ewald::{Ewald, EwaldParams};

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: tme_bench::alloc::CountingAllocator = tme_bench::alloc::CountingAllocator::new();

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Minimum wall time over `repeats` calls after `warmup` uncounted
/// warm-up calls, in microseconds (see the module docs for why min, not
/// median).
fn min_us(warmup: usize, repeats: usize, mut call: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        call();
    }
    (0..repeats.max(1))
        .map(|_| {
            let t = Instant::now();
            call();
            t.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::INFINITY, f64::min)
}

/// Min-of-repeats `compute_with` timing plus the stage breakdown of the
/// repeat that achieved the minimum (so the stages sum to the reported
/// time instead of describing some other call).
fn min_compute_us(
    warmup: usize,
    repeats: usize,
    tme: &Tme,
    ws: &mut TmeWorkspace,
    system: &CoulombSystem,
) -> (f64, TmeStageTimings) {
    for _ in 0..warmup {
        tme.compute_with(ws, system);
    }
    let mut best = f64::INFINITY;
    let mut stages = ws.stage_timings();
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        tme.compute_with(ws, system);
        let us = t.elapsed().as_secs_f64() * 1e6;
        if us < best {
            best = us;
            stages = ws.stage_timings();
        }
    }
    (best, stages)
}

/// Allocations per call in steady state (0 when the feature is off too,
/// but then it is "not measured" and reported as null).
fn allocs_per_call(repeats: usize, mut call: impl FnMut()) -> Option<u64> {
    #[cfg(feature = "alloc-count")]
    {
        let n = repeats.max(1) as u64;
        ALLOC.reset();
        for _ in 0..n {
            call();
        }
        return Some(ALLOC.allocations() / n);
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        let _ = (repeats, &mut call);
        None
    }
}

struct Row {
    threads: usize,
    convolution_us: f64,
    compute_us: f64,
    allocs_per_compute: Option<u64>,
    bitwise_identical: bool,
    stages: TmeStageTimings,
}

/// One scaled water box measured at every thread count: bitwise check,
/// bare-convolution and full-pipeline min-of-repeats timings, allocation
/// audit. Shared by the default family and the `paper_box` family.
fn measure_family(
    tme: &Tme,
    system: &CoulombSystem,
    n: usize,
    repeats: usize,
    warmup: usize,
    label: &str,
) -> Vec<Row> {
    let box_l = system.box_l;
    // Bare separable convolution input: a synthetic charge grid.
    let fit = GaussianFit::new(2.2936, 4);
    let kernel = TensorKernel::new(&fit, [box_l[0] / n as f64; 3], 6, 8);
    let folded = FoldedKernels::plan(&kernel, [n; 3]);
    let mut q = Grid3::zeros([n; 3]);
    for (i, v) in q.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 31 % 97) as f64 - 48.0) * 0.01;
    }

    // Single-thread force bits are the determinism reference.
    let mut reference_bits: Vec<u64> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for threads in THREADS {
        let pool = Arc::new(Pool::new(threads));
        let mut ws = TmeWorkspace::with_pool(tme, Arc::clone(&pool));
        let mut conv_scratch = ConvolveScratch::for_dims([n; 3]);
        let mut conv_out = Grid3::zeros([n; 3]);

        // First call sizes every buffer; also yields the forces to compare.
        let bits: Vec<u64> = tme
            .compute_with(&mut ws, system)
            .forces
            .iter()
            .flat_map(|f| f.iter().map(|c| c.to_bits()))
            .collect();
        if threads == 1 {
            reference_bits = bits.clone();
        }
        let bitwise_identical = bits == reference_bits;

        let convolution_us = min_us(warmup, repeats, || {
            convolve_separable_into(
                &q,
                &kernel,
                1.0,
                &folded,
                &pool,
                &mut conv_scratch,
                &mut conv_out,
            );
        });
        let (compute_us, stages) = min_compute_us(warmup, repeats, tme, &mut ws, system);
        let allocs_per_compute = allocs_per_call(repeats, || {
            tme.compute_with(&mut ws, system);
        });

        println!(
            "{label} threads {threads}: convolution {convolution_us:.1} us, compute \
             {compute_us:.1} us, bitwise {} , allocs/call {}",
            if bitwise_identical { "ok" } else { "MISMATCH" },
            allocs_per_compute.map_or_else(|| "n/a".to_string(), |a| a.to_string()),
        );
        println!(
            "  stages (min repeat, us): assign {} convolve {} transfer {} toplevel {} \
             interpolate {} short_range {} total {}",
            stages.assign_us,
            stages.convolve_us,
            stages.transfer_us,
            stages.toplevel_us,
            stages.interpolate_us,
            stages.short_range_us,
            stages.total_us,
        );
        rows.push(Row {
            threads,
            convolution_us,
            compute_us,
            allocs_per_compute,
            bitwise_identical,
            stages,
        });
    }

    assert!(
        rows.iter().all(|r| r.bitwise_identical),
        "{label}: forces changed bits across thread counts — determinism contract broken"
    );

    // Parallel-efficiency report: speedup versus the single-thread row.
    let single_us = rows[0].compute_us;
    if let Some(r4) = rows.iter().find(|r| r.threads == 4) {
        let speedup = single_us / r4.compute_us;
        if speedup < 1.2 {
            eprintln!(
                "WARNING: {label} 4-thread speedup is {speedup:.2}x (< 1.2x). On a multi-core \
                 host this means the parallel stages are not scaling; on a single-core host (as \
                 in CI) it is expected — check the host_threads field before reading anything \
                 into it."
            );
        }
    }
    rows
}

/// The matched-accuracy force-error target of the per-backend table —
/// the same 5e-4 bar `crates/reference/src/spme.rs` pins.
const FORCE_TARGET: f64 = 5e-4;

struct BackendRow {
    name: &'static str,
    grid_points: u64,
    force_err: f64,
    compute_us: f64,
}

/// Deterministic net-neutral random system (splitmix64 positions,
/// alternating unit charges) — the marginal-grid regime of
/// `crates/reference/src/spme.rs`.
fn random_neutral(n: usize, box_edge: f64, seed: u64) -> CoulombSystem {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let pos = (0..n)
        .map(|_| [next() * box_edge, next() * box_edge, next() * box_edge])
        .collect();
    let q = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    CoulombSystem::new(pos, q, [box_edge; 3])
}

/// Plan `params`, warm its workspace, and return (grid points, force
/// error vs `oracle`, min compute µs on one thread).
fn measure_backend(
    params: &BackendParams,
    sys: &CoulombSystem,
    oracle: &CoulombResult,
    repeats: usize,
) -> (u64, f64, f64) {
    let plan = match plan_backend(params, sys.box_l) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("FAIL: backend table configuration rejected: {e}");
            std::process::exit(1);
        }
    };
    let mut ws = plan.make_workspace_with_pool(Arc::new(Pool::new(1)));
    let mut out = CoulombResult::zeros(sys.len());
    if let Err(e) = plan.compute_into(sys, &mut ws, &mut out) {
        eprintln!("FAIL: {} execute failed: {e}", plan.name());
        std::process::exit(1);
    }
    let force_err = relative_force_error(&out.forces, &oracle.forces);
    let compute_us = min_us(1, repeats, || {
        let _ = plan.compute_into(sys, &mut ws, &mut out);
    });
    (plan.grid_points(), force_err, compute_us)
}

/// The per-backend accuracy/cost table plus the PSWF demonstration.
/// Each backend runs on the smallest grid that meets `FORCE_TARGET`;
/// the quasi-2D slab backend is deliberately absent (different
/// geometry, no matched-error row — its oracle lives in
/// `tests/backend_oracle.rs`).
fn backend_table(repeats: usize, filter: Option<&str>) -> (Vec<BackendRow>, Option<f64>) {
    if filter == Some("slab") {
        println!(
            "backend slab: no matched-error row (quasi-2D geometry has no periodic oracle \
             here; see tests/backend_oracle.rs)"
        );
        return (Vec::new(), None);
    }
    let sys = random_neutral(60, 4.0, 2024);
    let r_cut = 1.2;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-5);
    let oracle = Ewald::new(EwaldParams::reference_quality(sys.box_l, 1e-14)).compute(&sys);
    let mesh = |n: usize| TmeParams {
        n: [n; 3],
        p: 6,
        levels: 1,
        gc: 12,
        m_gaussians: 4,
        alpha,
        r_cut,
    };
    let cases: Vec<(&'static str, BackendParams)> = vec![
        ("tme", BackendParams::Tme(mesh(32))),
        (
            "spme",
            BackendParams::Spme(SpmeParams {
                n: [32; 3],
                p: 8,
                alpha,
                r_cut,
            }),
        ),
        (
            "spme-pswf",
            BackendParams::SpmePswf(PswfParams {
                n: [16; 3],
                p: 8,
                alpha,
                r_cut,
                shape: 0.0,
            }),
        ),
        (
            "ewald",
            BackendParams::Ewald(EwaldParams {
                alpha,
                r_cut,
                n_cut: 16,
            }),
        ),
        ("msm", BackendParams::Msm(mesh(32))),
    ];
    let mut rows = Vec::new();
    for (name, params) in &cases {
        if filter.is_some_and(|f| f != *name) {
            continue;
        }
        let (grid_points, force_err, compute_us) = measure_backend(params, &sys, &oracle, repeats);
        let ok = force_err < FORCE_TARGET;
        println!(
            "backend {name:<10}: {grid_points:>6} grid points, force err {force_err:.3e} \
             (target {FORCE_TARGET:.0e} {}), compute {compute_us:.1} us",
            if ok { "ok" } else { "MISSED" },
        );
        if !ok {
            eprintln!("FAIL: backend {name} missed the matched force-error target");
            std::process::exit(1);
        }
        rows.push(BackendRow {
            name,
            grid_points,
            force_err,
            compute_us,
        });
    }
    if let Some(f) = filter {
        if rows.is_empty() {
            eprintln!("FAIL: --backend {f} names no table backend");
            std::process::exit(1);
        }
        // Focused CI leg: no cross-backend demo to check.
        return (rows, None);
    }

    // The PSWF acceptance demonstration: same marginal 16³ grid, the
    // PSWF window is at least as accurate as the B-spline and meets the
    // target the B-spline needs 32³ (8x the points) for.
    let (_, bspline16_err, _) = measure_backend(
        &BackendParams::Spme(SpmeParams {
            n: [16; 3],
            p: 8,
            alpha,
            r_cut,
        }),
        &sys,
        &oracle,
        repeats,
    );
    let pswf = rows.iter().find(|r| r.name == "spme-pswf");
    let bspline = rows.iter().find(|r| r.name == "spme");
    let (Some(pswf), Some(bspline)) = (pswf, bspline) else {
        eprintln!("FAIL: PSWF demo rows missing from the backend table");
        std::process::exit(1);
    };
    println!(
        "pswf demo: 16^3 pswf {:.3e} vs 16^3 b-spline {bspline16_err:.3e} vs 32^3 b-spline \
         {:.3e} ({} vs {} grid points at the {FORCE_TARGET:.0e} target)",
        pswf.force_err, bspline.force_err, pswf.grid_points, bspline.grid_points,
    );
    if pswf.force_err > bspline16_err || pswf.grid_points >= bspline.grid_points {
        eprintln!("FAIL: PSWF no longer beats the B-spline window on the marginal grid");
        std::process::exit(1);
    }
    (rows, Some(bspline16_err))
}

/// One committed row family's gate-relevant numbers: atom count,
/// single-thread `compute_us` and (when present) the single-thread
/// short-range stage.
struct BaselineFamily {
    atoms: u64,
    compute_us: f64,
    short_range_us: Option<f64>,
    /// Best `speedup_vs_1t` across the family's rows, for the
    /// thread-scaling gate (only comparable across equal hosts).
    best_speedup: Option<f64>,
}

/// Parse a family from `text` — the whole report for the default rows,
/// or the slice starting at `"paper_box"` for the paper rows (each row
/// renders on one line, so scanning forward from `"threads": 1,` stays
/// inside that row's object).
fn parse_baseline_family(text: &str) -> Option<BaselineFamily> {
    let atoms = scan_number(text, "\"atoms\": ")? as u64;
    let one = text.find("\"threads\": 1,")?;
    let row = &text[one..];
    let compute_us = scan_number(row, "\"compute_us\": ")?;
    let short_range_us = scan_number(row, "\"short_range\": ");
    let best_speedup = scan_numbers(text, "\"speedup_vs_1t\": ")
        .into_iter()
        .fold(None, |best: Option<f64>, s| {
            Some(best.map_or(s, |b| b.max(s)))
        });
    Some(BaselineFamily {
        atoms,
        compute_us,
        short_range_us,
        best_speedup,
    })
}

/// First `"key": <number>` occurrence after the start of `text`.
fn scan_number(text: &str, key: &str) -> Option<f64> {
    let i = text.find(key)? + key.len();
    let rest = &text[i..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// Every `"key": <number>` occurrence in `text`, in order.
fn scan_numbers(text: &str, key: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find(key) {
        rest = &rest[i + key.len()..];
        if let Some(end) = rest.find([',', '}', '\n']) {
            if let Ok(v) = rest[..end].trim().parse() {
                out.push(v);
            }
        }
    }
    out
}

/// `>15%` regression gate on one metric; returns true on failure.
fn gate_regression(what: &str, current_us: f64, base_us: f64) -> bool {
    let ratio = current_us / base_us;
    println!("baseline {what}: {base_us:.1} us -> {current_us:.1} us ({ratio:.3}x)");
    if ratio > 1.15 {
        eprintln!(
            "FAIL: {what} regressed {:.1}% vs baseline (limit 15%)",
            (ratio - 1.0) * 100.0
        );
        return true;
    }
    false
}

/// Gate one measured family against its committed counterpart (compute
/// plus the short-range stage when the baseline records it). Returns
/// true on any failure.
fn gate_family(label: &str, rows: &[Row], baseline: Option<&BaselineFamily>, atoms: u64) -> bool {
    let Some(base) = baseline else {
        eprintln!("no {label} family in the baseline — skipping its regression check");
        return false;
    };
    if base.atoms != atoms {
        eprintln!(
            "baseline {label} family is for {} atoms, this run has {atoms} — skipping its \
             regression check",
            base.atoms
        );
        return false;
    }
    let mut failed = gate_regression(
        &format!("{label} single-thread compute_us"),
        rows[0].compute_us,
        base.compute_us,
    );
    if let Some(base_sr) = base.short_range_us {
        failed |= gate_regression(
            &format!("{label} single-thread short_range stage"),
            rows[0].stages.short_range_us as f64,
            base_sr,
        );
    }
    failed
}

/// Thread-speedup gate: the best multi-thread speedup must stay within
/// 15% of the committed baseline's best. Only meaningful when the
/// baseline was recorded on a host with the same available parallelism:
/// the committed rows were measured at `host_threads: 1` (see
/// ROADMAP.md), where every "speedup" is pure pool overhead around 1.0×,
/// so comparing them against a many-core runner (or vice versa) would
/// gate host topology, not code. Returns true on failure.
fn gate_speedup(
    label: &str,
    rows: &[Row],
    base: Option<&BaselineFamily>,
    baseline_host: Option<u64>,
    host_threads: u64,
    atoms: u64,
) -> bool {
    let Some(base_speedup) = base
        .filter(|b| b.atoms == atoms)
        .and_then(|b| b.best_speedup)
    else {
        return false;
    };
    match baseline_host {
        Some(h) if h == host_threads => {}
        Some(h) => {
            println!(
                "skipping the {label} thread-speedup gate: baseline recorded at host_threads \
                 {h}, this host has {host_threads}"
            );
            return false;
        }
        None => {
            println!("skipping the {label} thread-speedup gate: baseline records no host_threads");
            return false;
        }
    }
    let best = rows
        .iter()
        .map(|r| rows[0].compute_us / r.compute_us)
        .fold(0.0, f64::max);
    println!("baseline {label} best thread speedup: {base_speedup:.3}x -> {best:.3}x");
    if best < 0.85 * base_speedup {
        eprintln!(
            "FAIL: {label} thread speedup regressed: {best:.3}x vs baseline {base_speedup:.3}x \
             (limit 15%)"
        );
        return true;
    }
    false
}

/// Append one family's rows to a JSON object (the shared row schema of
/// the default and `paper_box` families).
fn emit_rows(o: &mut tme_bench::json::JsonObject, rows: &[Row]) {
    let single_us = rows[0].compute_us;
    o.rows("rows", rows, |r, row| {
        let allocs = r
            .allocs_per_compute
            .map_or_else(|| "null".to_string(), |a| a.to_string());
        let s = r.stages;
        row.u64("threads", r.threads as u64)
            .f64("convolution_us", r.convolution_us, 3)
            .f64("compute_us", r.compute_us, 3)
            .f64("speedup_vs_1t", single_us / r.compute_us, 3)
            .raw("allocs_per_compute", &allocs)
            .bool("bitwise_identical", r.bitwise_identical)
            .obj("stages_us", |o| {
                o.u64("assign", s.assign_us)
                    .u64("convolve", s.convolve_us)
                    .u64("transfer", s.transfer_us)
                    .u64("toplevel", s.toplevel_us)
                    .u64("interpolate", s.interpolate_us)
                    .u64("short_range", s.short_range_us)
                    .u64("total", s.total_us);
            });
    });
}

/// The paper-density water box scaled to `waters`, with its grid and TME
/// parameters (h ≈ 0.3116 nm, paper cutoff clamped to the minimum-image
/// bound for small boxes).
fn scaled_config(waters: usize) -> (CoulombSystem, usize, Tme) {
    let box_edge = 9.9727 * (waters as f64 / 32773.0).cbrt();
    let n = grid_for_box(box_edge);
    let system = water_system(waters, 7);
    let box_l = system.box_l;
    let r_cut = 0.9f64.min(box_l.iter().copied().fold(f64::INFINITY, f64::min) / 2.0);
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let params = TmeParams {
        n: [n; 3],
        p: 6,
        levels: 1,
        gc: 8,
        m_gaussians: 4,
        alpha,
        r_cut,
    };
    let tme = Tme::new(params, box_l);
    (system, n, tme)
}

fn main() {
    tme_bench::init_cli();
    let mut args = Args::parse();
    let waters: usize = args.get("--waters", 512);
    let repeats: usize = args.get("--repeats", 20);
    let warmup: usize = args.get("--warmup", 2);
    let paper_waters: usize = args.get("--paper-waters", 0);
    let paper_repeats: usize = args.get("--paper-repeats", 3);
    let out_path = args
        .opt("--out")
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let baseline_path = args.opt("--baseline");
    let backend_filter = args.opt("--backend");
    args.finish();

    let host_threads = std::thread::available_parallelism().map_or(0, |v| v.get() as u64);

    let (system, n, tme) = scaled_config(waters);
    println!(
        "# pipeline_scaling: {} atoms, {n}^3 grid, box {:.3} nm, {repeats} repeats \
         (+{warmup} warmup), host threads {host_threads}",
        system.len(),
        system.box_l[0]
    );
    let rows = measure_family(&tme, &system, n, repeats, warmup, "default");

    // The paper's full Table 1 geometry as its own tracked row family.
    let paper = (paper_waters > 0).then(|| {
        let (psystem, pn, ptme) = scaled_config(paper_waters);
        println!(
            "# paper box: {} atoms, {pn}^3 grid, box {:.3} nm, {paper_repeats} repeats",
            psystem.len(),
            psystem.box_l[0]
        );
        let prows = measure_family(&ptme, &psystem, pn, paper_repeats, 1, "paper_box");
        (psystem.len() as u64, pn, prows)
    });

    // Regression gate against a previously committed baseline, per family.
    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                // Bound each family's scan so the default family's
                // numbers never bleed into the paper_box rows.
                let paper_idx = text.find("\"paper_box\"");
                let base_default = parse_baseline_family(&text[..paper_idx.unwrap_or(text.len())]);
                let base_paper = paper_idx.and_then(|i| parse_baseline_family(&text[i..]));
                let baseline_host = scan_number(&text, "\"host_threads\": ").map(|v| v as u64);
                let mut failed =
                    gate_family("default", &rows, base_default.as_ref(), system.len() as u64);
                failed |= gate_speedup(
                    "default",
                    &rows,
                    base_default.as_ref(),
                    baseline_host,
                    host_threads,
                    system.len() as u64,
                );
                if let Some((atoms, _, prows)) = &paper {
                    failed |= gate_family("paper_box", prows, base_paper.as_ref(), *atoms);
                    failed |= gate_speedup(
                        "paper_box",
                        prows,
                        base_paper.as_ref(),
                        baseline_host,
                        host_threads,
                        *atoms,
                    );
                }
                if failed {
                    std::process::exit(1);
                }
            }
            Err(e) => eprintln!("could not read baseline {path}: {e} — skipping the gate"),
        }
    }

    // Per-backend accuracy/cost table (DESIGN.md §14) + PSWF demo.
    let (backend_rows, bspline16_err) = backend_table(repeats, backend_filter.as_deref());

    let json = tme_bench::json::report("pipeline_scaling", |o| {
        o.u64("atoms", system.len() as u64)
            .raw("grid", &format!("[{n}, {n}, {n}]"))
            .u64("repeats", repeats as u64)
            .u64("warmup", warmup as u64)
            .u64("host_threads", host_threads)
            .bool("alloc_count_feature", cfg!(feature = "alloc-count"));
        emit_rows(o, &rows);
        if let Some((atoms, pn, prows)) = &paper {
            o.obj("paper_box", |p| {
                p.u64("atoms", *atoms)
                    .raw("grid", &format!("[{pn}, {pn}, {pn}]"))
                    .u64("repeats", paper_repeats as u64);
                emit_rows(p, prows);
            });
        }
        o.f64("backend_force_target", FORCE_TARGET, 6)
            .rows("backends", &backend_rows, |r, row| {
                row.str("backend", r.name)
                    .u64("grid_points", r.grid_points)
                    .f64("force_err", r.force_err, 8)
                    .f64("compute_us", r.compute_us, 3);
            });
        if let Some(b16) = bspline16_err {
            let pswf = backend_rows.iter().find(|r| r.name == "spme-pswf");
            let bspline = backend_rows.iter().find(|r| r.name == "spme");
            if let (Some(p), Some(b)) = (pswf, bspline) {
                o.obj("pswf_demo", |d| {
                    d.u64("pswf_grid_points", p.grid_points)
                        .f64("pswf_force_err", p.force_err, 8)
                        .f64("bspline_same_grid_force_err", b16, 8)
                        .u64("bspline_matched_grid_points", b.grid_points)
                        .f64("bspline_matched_force_err", b.force_err, 8);
                });
            }
        }
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
