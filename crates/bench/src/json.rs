//! Shared JSON emission for the `BENCH_*.json` reports.
//!
//! `chaos_run` and `pipeline_scaling` used to hand-roll their writers
//! with `writeln!`; this module is the one implementation all bench bins
//! (including `serve_load`) go through. Still dependency-free — the
//! workspace has no serialisation crate — but with one shape: a
//! top-level object carrying a `schema` version tag and the benchmark
//! name first, scalar fields in insertion order, and row arrays rendered
//! as compact one-line objects (the committed-baseline diff stays
//! readable and the `pipeline_scaling` regression scanner keeps finding
//! `"threads": 1,` on one line).
//!
//! Floats are written with a caller-chosen precision; non-finite values
//! become `null` (JSON has no NaN/∞, and a report that silently printed
//! `inf` would be unparseable downstream).

/// An object under construction: ordered `key → rendered value` pairs.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    fn put(&mut self, key: &str, value: String) {
        self.fields.push((key.to_string(), value));
    }

    pub fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.put(key, v.to_string());
        self
    }

    /// Fixed-precision float; non-finite renders as `null`.
    pub fn f64(&mut self, key: &str, v: f64, decimals: usize) -> &mut Self {
        let rendered = if v.is_finite() {
            format!("{v:.decimals$}")
        } else {
            "null".to_string()
        };
        self.put(key, rendered);
        self
    }

    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.put(key, v.to_string());
        self
    }

    /// Escaped string value.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.put(key, format!("\"{}\"", escape(v)));
        self
    }

    /// Pre-rendered JSON value, verbatim — `null`, a small inline array
    /// like `[32, 32, 32]`, or an integer-or-null option.
    pub fn raw(&mut self, key: &str, v: &str) -> &mut Self {
        self.put(key, v.to_string());
        self
    }

    /// Nested object, rendered compactly on one line.
    pub fn obj(&mut self, key: &str, build: impl FnOnce(&mut JsonObject)) -> &mut Self {
        let mut o = JsonObject::default();
        build(&mut o);
        self.put(key, o.render_compact());
        self
    }

    /// Array of objects, one compact object per line — the `rows` shape
    /// every bench report uses.
    pub fn rows<T>(
        &mut self,
        key: &str,
        items: &[T],
        mut build: impl FnMut(&T, &mut JsonObject),
    ) -> &mut Self {
        let rendered: Vec<String> = items
            .iter()
            .map(|item| {
                let mut o = JsonObject::default();
                build(item, &mut o);
                format!("    {}", o.render_compact())
            })
            .collect();
        if rendered.is_empty() {
            self.put(key, "[]".to_string());
        } else {
            self.put(key, format!("[\n{}\n  ]", rendered.join(",\n")));
        }
        self
    }

    fn render_compact(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a complete benchmark report: `schema` and `benchmark` first,
/// then whatever `build` adds, pretty-printed two-space at the top level.
pub fn report(benchmark: &str, build: impl FnOnce(&mut JsonObject)) -> String {
    let mut o = JsonObject::default();
    o.str("schema", "tme-bench/1");
    o.str("benchmark", benchmark);
    build(&mut o);
    let body: Vec<String> = o
        .fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n}}\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_schema_and_order() {
        let out = report("demo", |o| {
            o.u64("steps", 7)
                .f64("mean_us", 12.3456, 3)
                .bool("ok", true);
        });
        let schema = out.find("\"schema\": \"tme-bench/1\"");
        let bench = out.find("\"benchmark\": \"demo\"");
        let steps = out.find("\"steps\": 7");
        assert!(schema < bench && bench < steps, "field order broken: {out}");
        assert!(out.contains("\"mean_us\": 12.346"));
        assert!(out.contains("\"ok\": true"));
        assert!(out.ends_with("}\n"));
    }

    #[test]
    fn rows_render_one_compact_object_per_line() {
        let out = report("demo", |o| {
            o.rows("rows", &[1u64, 2], |&v, row| {
                row.u64("threads", v).obj("stages_us", |s| {
                    s.u64("assign", v * 10);
                });
            });
        });
        // The regression scanner's pattern must survive: row fields stay
        // on one line with `, ` separators.
        assert!(
            out.contains("{\"threads\": 1, \"stages_us\": {\"assign\": 10}}"),
            "{out}"
        );
        assert!(out.contains("{\"threads\": 2, "));
        let row_lines = out.lines().filter(|l| l.contains("\"threads\"")).count();
        assert_eq!(row_lines, 2);
    }

    #[test]
    fn non_finite_floats_become_null_and_strings_escape() {
        let out = report("demo", |o| {
            o.f64("bad", f64::NAN, 2)
                .raw("maybe", "null")
                .str("msg", "a \"quoted\"\nline");
        });
        assert!(out.contains("\"bad\": null"));
        assert!(out.contains("\"maybe\": null"));
        assert!(out.contains("\"msg\": \"a \\\"quoted\\\"\\nline\""));
    }

    #[test]
    fn empty_rows_render_as_empty_array() {
        let out = report("demo", |o| {
            o.rows("rows", &[] as &[u64], |_, _| {});
        });
        assert!(out.contains("\"rows\": []"));
    }
}
