//! Allocation-counting global allocator backing the zero-allocation proof
//! of the plan/execute split (`tests/zero_alloc.rs` and the
//! `--alloc-count` column of `pipeline_scaling`).
//!
//! Compiled only under the `alloc-count` feature so the normal bench
//! binaries keep the stock system allocator. The counter is a single
//! relaxed atomic incremented on every `alloc`/`alloc_zeroed`/`realloc`
//! from *any* thread — pool workers included — so "zero since reset"
//! really means the steady-state execute path touched the heap nowhere.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that forwards to [`System`] while counting every
/// heap acquisition (frees are deliberately not counted: a `dealloc`
/// without a matching `alloc` after a reset only shrinks the footprint).
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
}

impl CountingAllocator {
    /// `const` so the counter can be a `#[global_allocator]` static.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
        }
    }

    /// Zero the counter (start of a measured window).
    pub fn reset(&self) {
        self.allocations.store(0, Ordering::SeqCst);
    }

    /// Allocations observed since the last [`CountingAllocator::reset`].
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::SeqCst)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method forwards the exact layout/pointer arguments to the
// system allocator, which upholds the GlobalAlloc contract; the only added
// behaviour is a relaxed atomic increment, which cannot allocate or panic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the GlobalAlloc contract; forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds the GlobalAlloc contract; forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator, i.e. from `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from this allocator; contract forwarded verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
