//! Shared helpers for the benchmark harnesses (`src/bin/*`) that
//! regenerate every table and figure of the paper, and for the criterion
//! benches (`benches/*`).

use tme_md::water::{relax, water_box};
use tme_mesh::CoulombSystem;

#[cfg(feature = "alloc-count")]
pub mod alloc;
pub mod args;
pub mod harness;
pub mod json;

/// Restore default SIGPIPE semantics so harness output piped into
/// `head`/`less` terminates quietly instead of panicking (Rust masks
/// SIGPIPE by default, turning EPIPE into a printing panic).
pub fn init_cli() {
    #[cfg(unix)]
    {
        // Raw libc binding: `signal(2)` is in every libc Rust links against,
        // and std offers no safe way to reset a disposition.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGPIPE: i32 = 13; // POSIX-mandated value on every unix Rust targets
        const SIG_DFL: usize = 0;
        // SAFETY: `signal` is async-signal-safe and called here before any
        // threads are spawned (first statement of every harness `main`), so
        // no handler can race. SIG_DFL for SIGPIPE terminates the process on
        // a closed pipe — exactly the CLI semantics we want — and installs
        // no Rust callback, so no unwinding crosses the FFI boundary.
        unsafe {
            signal(SIGPIPE, SIG_DFL);
        }
    }
}

/// Build a TIP3P water box and return it as a bare charge system.
///
/// The paper's Table 1 box is 32,773 waters at L = 9.9727 nm with a 32³
/// grid (h ≈ 0.3116 nm). Any smaller `n_waters` keeps the same density,
/// and [`grid_for_box`] keeps the same grid spacing, so the SPME/TME
/// error regime is preserved.
pub fn water_system(n_waters: usize, seed: u64) -> CoulombSystem {
    water_box(n_waters, seed).coulomb_system()
}

/// Like [`water_system`] but with `relax_steps` of constrained steepest
/// descent first — a liquid-like local structure gives force statistics
/// closer to the paper's GROMACS-equilibrated configurations.
pub fn relaxed_water_system(n_waters: usize, seed: u64, relax_steps: usize) -> CoulombSystem {
    let mut sys = water_box(n_waters, seed);
    relax(&mut sys, relax_steps, 0.9);
    sys.coulomb_system()
}

/// Pick the power-of-two grid that keeps h ≈ 0.3116 nm (the paper's
/// spacing), clamped to the hardware-supported range [16, 128] so the
/// L = 1 top level (N/2) never drops below the p = 6 spline order.
pub fn grid_for_box(box_edge: f64) -> usize {
    const H_PAPER: f64 = 9.9727 / 32.0;
    let ideal = box_edge / H_PAPER;
    let mut n = 16usize;
    while (n * 2) as f64 <= ideal * 1.5 && n < 128 {
        n *= 2;
    }
    n
}

/// Tiny command-line flag reader: `--name value`. One-shot wrapper over
/// [`args::Args`] for harnesses that don't validate leftovers.
pub fn arg_value(name: &str) -> Option<String> {
    args::Args::parse().opt(name)
}

/// `--flag` presence. One-shot wrapper over [`args::Args`].
pub fn arg_flag(name: &str) -> bool {
    args::Args::parse().flag(name)
}

/// Parse `--name v` with a default. One-shot wrapper over [`args::Args`];
/// unparseable values keep the legacy silent-default behaviour.
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    args::Args::parse().get(name, default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_tracks_paper_spacing() {
        assert_eq!(grid_for_box(9.9727), 32); // the paper's box
        assert_eq!(grid_for_box(4.9863), 16); // half box
        assert_eq!(grid_for_box(19.95), 64); // §VI.A box
        assert_eq!(grid_for_box(1.0), 16); // clamped low end
    }

    #[test]
    fn water_system_is_neutral() {
        let s = water_system(27, 1);
        assert_eq!(s.len(), 81);
        assert!(s.total_charge().abs() < 1e-10);
    }
}
