//! Minimal in-tree micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds with zero external dependencies, so the
//! `benches/*.rs` targets (all `harness = false`) drive this module instead
//! of criterion. It reproduces the narrow API surface those benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `b.iter(..)` —
//! with a fixed-budget median-of-samples measurement. It aims for useful
//! relative numbers and stable output, not criterion's statistical rigour;
//! absolute timings from CI-class machines should be read accordingly.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use tme_bench::harness::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level driver, one per bench binary.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: 30,
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(1000),
        }
    }

    /// Measure a single closure outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
    }
}

/// Parameterised benchmark label, `name/param`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(name: &str, param: P) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }
}

/// A group of measurements sharing sampling configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
    warmup: Duration,
    measure: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.warmup, self.measure);
        f(&mut b);
        b.report(id);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.warmup, self.measure);
        f(&mut b, input);
        b.report(&id.label);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to the bench closure; call [`Bencher::iter`] with the payload.
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    measure: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warmup: Duration, measure: Duration) -> Self {
        Self {
            sample_size,
            warmup,
            measure,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, keeping per-iteration nanoseconds for each sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and size the inner loop so one sample is long enough for
        // the clock (≥ ~50 µs) but the whole bench stays within budget.
        let mut iters_per_sample = 1usize;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_micros(50) || iters_per_sample >= 1 << 20 {
                if warm_start.elapsed() >= self.warmup {
                    break;
                }
            } else {
                iters_per_sample = iters_per_sample.saturating_mul(2);
            }
        }
        let per_sample_budget = self.measure.as_secs_f64() / self.sample_size as f64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            let mut done = 0usize;
            loop {
                std_black_box(routine());
                done += 1;
                if done >= iters_per_sample {
                    break;
                }
            }
            let dt = t.elapsed().as_secs_f64();
            self.samples.push(dt * 1e9 / done as f64);
            if dt > per_sample_budget * 4.0 {
                break; // one routine call blew the budget; stop early
            }
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id}: no samples (closure never called iter)");
            return;
        }
        self.samples.sort_by(f64::total_cmp);
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "  {id}: median {} (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            self.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Criterion-compatible glue: `criterion_group!(benches, bench_a, bench_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible glue: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_cli();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut b = Bencher::new(5, Duration::from_millis(1), Duration::from_millis(10));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s > 0.0));
        b.report("smoke");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("fft3", 32).label, "fft3/32");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
