//! Criterion bench for Fig. 3's machinery: building the Gauss–Legendre
//! shell fit and scanning its approximation error for M = 1..4.

use tme_bench::harness::{BenchmarkId, Criterion};
use tme_bench::{criterion_group, criterion_main};
use tme_core::shells::GaussianFit;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_gaussian_fit");
    for m in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::new("fit_and_scan", m), &m, |b, &m| {
            b.iter(|| {
                let fit = GaussianFit::new(std::hint::black_box(2.751), m);
                fit.normalised_max_error(5.0, 200)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
