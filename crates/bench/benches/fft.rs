//! FFT benches: the radix-2 plan, the radix-4 CFFT16 kernel (the FPGA
//! unit's structure) and the 3-D transform the top level uses.

use tme_bench::harness::{BenchmarkId, Criterion};
use tme_bench::{criterion_group, criterion_main};
use tme_num::fft::{cfft16, cfft16_f32, Fft, Fft3, RealFft3};
use tme_num::{complex::Complex32, Complex64};

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [16usize, 64, 256, 4096] {
        let plan = Fft::new(n);
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut y = x.clone();
                plan.forward(&mut y);
                y
            });
        });
    }
    let x16: [Complex64; 16] = signal(16).try_into().unwrap();
    g.bench_function("cfft16_f64", |b| {
        b.iter(|| {
            let mut y = x16;
            cfft16(&mut y, false);
            y
        });
    });
    let x16s: [Complex32; 16] = core::array::from_fn(|i| x16[i].to_c32());
    g.bench_function("cfft16_f32_fpga_datapath", |b| {
        b.iter(|| {
            let mut y = x16s;
            cfft16_f32(&mut y, false);
            y
        });
    });
    for n in [16usize, 32] {
        let plan = Fft3::new(n, n, n);
        let x = signal(n * n * n);
        g.bench_with_input(BenchmarkId::new("fft3_forward", n), &n, |b, _| {
            b.iter(|| {
                let mut y = x.clone();
                plan.forward(&mut y);
                y
            });
        });
        // Real-input half-spectrum path (grid charges are real): ~2×.
        let rplan = RealFft3::new(n, n, n);
        let xr: Vec<f64> = (0..n * n * n).map(|i| (i as f64 * 0.37).sin()).collect();
        g.bench_with_input(BenchmarkId::new("rfft3_forward", n), &n, |b, _| {
            let mut spec = vec![Complex64::ZERO; rplan.spectrum_len()];
            b.iter(|| {
                rplan.forward(&xr, &mut spec);
                spec[0]
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
