//! Machine-simulator throughput for the Fig. 9 / Table 2 / §VI.A
//! workloads (a full 512-node MD-step schedule per iteration).

use mdgrape_sim::{simulate_step, simulate_step_into, MachineConfig, StepScratch, StepWorkload};
use tme_bench::harness::Criterion;
use tme_bench::{criterion_group, criterion_main};

fn bench(c: &mut Criterion) {
    let cfg = MachineConfig::mdgrape4a();
    let fig9 = StepWorkload::paper_fig9();
    let grid64 = StepWorkload::paper_grid64();
    let mut no_lr = StepWorkload::paper_fig9();
    no_lr.long_range = false;
    let mut g = c.benchmark_group("machine_step");
    g.bench_function("fig9_32cubed", |b| b.iter(|| simulate_step(&cfg, &fig9)));
    g.bench_function("grid64_L2", |b| b.iter(|| simulate_step(&cfg, &grid64)));
    g.bench_function("fig9_no_long_range", |b| {
        b.iter(|| simulate_step(&cfg, &no_lr));
    });
    // Scratch reuse (the plan/execute split applied to the simulator): one
    // StepScratch across iterations, as `simulate_run` does across steps.
    g.bench_function("fig9_32cubed_scratch_reuse", |b| {
        let mut scratch = StepScratch::new();
        b.iter(|| simulate_step_into(&cfg, &fig9, &mut scratch).total_us);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
