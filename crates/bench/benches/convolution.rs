//! §III.C ablation: the same rank-M tensor kernel evaluated separably
//! (TME / GCU style) vs densified direct 3-D convolution (B-spline MSM
//! style).

use tme_bench::harness::{BenchmarkId, Criterion};
use tme_bench::{criterion_group, criterion_main};
use tme_core::convolve::{
    convolve_separable, convolve_separable_into, ConvolveScratch, FoldedKernels,
};
use tme_core::kernel::TensorKernel;
use tme_core::shells::GaussianFit;
use tme_mesh::Grid3;
use tme_num::pool::Pool;
use tme_reference::msm::{convolve_direct, DenseKernel};

fn charge(n: usize) -> Grid3 {
    let mut q = Grid3::zeros([n; 3]);
    for (i, v) in q.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 31 % 97) as f64 - 48.0) * 0.01;
    }
    q
}

fn bench(c: &mut Criterion) {
    let gc = 8;
    let fit = GaussianFit::new(2.2936, 4);
    let mut g = c.benchmark_group("level1_convolution");
    g.sample_size(10);
    for n in [16usize, 32] {
        let h = 9.9727 / n as f64;
        let kernel = TensorKernel::new(&fit, [h; 3], 6, gc);
        let dense = DenseKernel::from_fn(gc, |m| kernel.dense_value(m));
        let q = charge(n);
        g.bench_with_input(BenchmarkId::new("tme_separable", n), &n, |b, _| {
            b.iter(|| convolve_separable(&q, &kernel, 1.0));
        });
        g.bench_with_input(BenchmarkId::new("msm_direct", n), &n, |b, _| {
            b.iter(|| convolve_direct(&dense, &q));
        });
    }
    g.finish();
}

/// Thread scaling of the planned `_into` path (the GCU's line-parallel
/// streaming): same 32³ rank-4 convolution at 1/2/4/8 threads. Results are
/// bitwise identical at every thread count; only wall time changes.
fn bench_threads(c: &mut Criterion) {
    let gc = 8;
    let n = 32usize;
    let h = 9.9727 / n as f64;
    let fit = GaussianFit::new(2.2936, 4);
    let kernel = TensorKernel::new(&fit, [h; 3], 6, gc);
    let folded = FoldedKernels::plan(&kernel, [n; 3]);
    let q = charge(n);
    let mut g = c.benchmark_group("convolution_threads_32cubed");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        let mut scratch = ConvolveScratch::for_dims([n; 3]);
        let mut out = Grid3::zeros([n; 3]);
        g.bench_with_input(
            BenchmarkId::new("tme_separable_into", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    convolve_separable_into(
                        &q,
                        &kernel,
                        1.0,
                        &folded,
                        &pool,
                        &mut scratch,
                        &mut out,
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench, bench_threads);
criterion_main!(benches);
