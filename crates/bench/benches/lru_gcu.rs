//! Hardware-datapath ablation: the LRU's particle↔grid operations
//! (B-spline weights + tensor products) and the fixed-point formats the
//! grid path uses, vs plain f64.

use tme_bench::harness::Criterion;
use tme_bench::water_system;
use tme_bench::{criterion_group, criterion_main};
use tme_mesh::SplineOps;
use tme_num::fixed::{quantize_slice, Fix32};

fn bench(c: &mut Criterion) {
    let sys = water_system(343, 9);
    let ops = SplineOps::new(6, [16; 3], sys.box_l);
    let mut g = c.benchmark_group("lru_gcu_datapath");
    g.sample_size(10);
    g.bench_function("lru_charge_assignment_1029_atoms", |b| {
        b.iter(|| ops.assign(&sys.pos, &sys.q));
    });
    let grid = ops.assign(&sys.pos, &sys.q);
    g.bench_function("lru_back_interpolation_1029_atoms", |b| {
        b.iter(|| ops.interpolate(&grid, &sys.pos, &sys.q));
    });
    let data: Vec<f64> = (0..4096)
        .map(|i| ((i * 37 % 101) as f64 - 50.0) * 0.013)
        .collect();
    g.bench_function("grid_quantize_fix32_frac24", |b| {
        b.iter(|| {
            let mut d = data.clone();
            quantize_slice::<24>(&mut d);
            d
        });
    });
    let fx: Vec<Fix32<20>> = data.iter().map(|&x| Fix32::<20>::from_f64(x)).collect();
    let k = Fix32::<24>::from_f64(0.0123);
    g.bench_function("fixed_point_multiply_accumulate", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for v in &fx {
                acc = acc.wrapping_add(v.mul_mixed::<24, 20>(k).0 as i64);
            }
            acc
        });
    });
    g.bench_function("f64_multiply_accumulate", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for v in &data {
                acc += v * 0.0123;
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
