//! Fig. 4 kernels: one velocity-Verlet + SETTLE NVE step with SPME and
//! with TME long-range electrostatics (216 waters).

use std::sync::Arc;

use tme_bench::harness::{BenchmarkId, Criterion};
use tme_bench::{criterion_group, criterion_main};
use tme_core::{Tme, TmeParams, TmeWorkspace};
use tme_md::backend::{SpmeBackend, SpmeParams, TmeBackend};
use tme_md::nve::NveSim;
use tme_md::water::{relax, thermalize, water_box};
use tme_num::pool::Pool;
use tme_reference::ewald::EwaldParams;

fn system() -> tme_md::MdSystem {
    let mut s = water_box(216, 3);
    relax(&mut s, 50, 0.9);
    thermalize(&mut s, 300.0, 4);
    s
}

fn bench(c: &mut Criterion) {
    let r_cut = 0.9;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let box_l = system().box_l;
    let spme = SpmeBackend::new(
        SpmeParams {
            n: [16; 3],
            p: 6,
            alpha,
            r_cut,
        },
        box_l,
    )
    .expect("valid SPME configuration");
    let tme = TmeBackend::new(
        TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha,
            r_cut,
        },
        box_l,
    )
    .expect("valid TME configuration");
    let mut g = c.benchmark_group("nve_step_216_waters");
    g.sample_size(10);
    g.bench_function("spme", |b| {
        let mut sim = NveSim::new(system(), &spme, 0.001, r_cut);
        b.iter(|| sim.step());
    });
    g.bench_function("tme", |b| {
        let mut sim = NveSim::new(system(), &tme, 0.001, r_cut);
        b.iter(|| sim.step());
    });
    g.finish();
}

/// Thread scaling of the TME long-range kernel inside the step (charge
/// assignment, convolutions, back interpolation, short-range pairs), via
/// the zero-allocation `compute_with` path at 1/2/4/8 threads. Forces are
/// bitwise identical at every thread count.
fn bench_threads(c: &mut Criterion) {
    let r_cut = 0.9;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let md = system();
    let box_l = md.box_l;
    let coul = md.coulomb_system();
    let tme = Tme::new(
        TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha,
            r_cut,
        },
        box_l,
    );
    let mut g = c.benchmark_group("tme_compute_threads_216_waters");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let mut ws = TmeWorkspace::with_pool(&tme, Arc::new(Pool::new(threads)));
        g.bench_with_input(
            BenchmarkId::new("compute_with", threads),
            &threads,
            |b, _| {
                b.iter(|| tme.compute_with(&mut ws, &coul).energy);
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench, bench_threads);
criterion_main!(benches);
