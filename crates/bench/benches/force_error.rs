//! Table 1 kernels: one full mesh evaluation (assignment → hierarchy →
//! interpolation) for SPME and for TME at the paper's parameters, on a
//! 1,000-water box.

use tme_bench::harness::{BenchmarkId, Criterion};
use tme_bench::water_system;
use tme_bench::{criterion_group, criterion_main};
use tme_core::{Tme, TmeParams};
use tme_reference::ewald::EwaldParams;
use tme_reference::{pairwise, Spme};

fn bench(c: &mut Criterion) {
    let sys = water_system(1000, 5);
    let r_cut = 1.0;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let spme = Spme::new([16; 3], sys.box_l, alpha, 6, r_cut);
    let mut g = c.benchmark_group("table1_mesh");
    g.sample_size(10);
    g.bench_function("spme_reciprocal_3000_atoms", |b| {
        b.iter(|| spme.reciprocal(&sys));
    });
    for m in [1usize, 4] {
        let tme = Tme::new(
            TmeParams {
                n: [16; 3],
                p: 6,
                levels: 1,
                gc: 8,
                m_gaussians: m,
                alpha,
                r_cut,
            },
            sys.box_l,
        );
        g.bench_with_input(
            BenchmarkId::new("tme_long_range_3000_atoms_M", m),
            &m,
            |b, _| {
                b.iter(|| tme.long_range(&sys));
            },
        );
    }
    g.bench_function("short_range_pairs_3000_atoms", |b| {
        b.iter(|| pairwise::short_range(&sys, alpha, r_cut));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
