//! Self-contained numerics for the TME reproduction.
//!
//! The paper's algorithm needs four numerical substrates that we implement
//! from scratch (the Rust MD/FFT ecosystem is thin and the point of this
//! repository is to be self-contained):
//!
//! * [`special`] — `erf`/`erfc` to near machine precision, used by the Ewald
//!   splitting (Eqs. 1–3 of the paper) and by the reference Ewald summation.
//! * [`quadrature`] — Gauss–Legendre nodes and weights, used to build the
//!   M-Gaussian approximation of the middle-range shells (Eqs. 6–7).
//! * [`fft`] — complex power-of-two FFTs (radix-2 for general sizes, a
//!   dedicated radix-4 16-point kernel mirroring the FPGA "CFFT16" unit) and
//!   3-D transforms, used by SPME and by the TME top-level convolution.
//! * [`fixed`] — Q-format fixed-point arithmetic mirroring the LRU/GCU
//!   hardware datapaths (24-bit-fraction polynomial path, 32-bit grid
//!   accumulation with a tunable binary point).
//! * [`pool`] — a dependency-free scoped thread pool with deterministic
//!   static scheduling, the software analogue of the machine's fixed
//!   particle/grid-line distribution across pipelines (execute phase of the
//!   plan/execute split, `TME_THREADS`).
//! * [`table`] — segmented-polynomial pair-kernel tables in `r²`, the
//!   software mirror of the machine's table-lookup force pipelines (no
//!   transcendentals in the pair inner loops; DESIGN.md §10).

pub mod bytes;
pub mod cast;
pub mod complex;
pub mod fft;
pub mod fixed;
pub mod pool;
pub mod quadrature;
pub mod rng;
pub mod special;
pub mod table;
pub mod vec3;

pub use complex::Complex64;
pub use fft::{Fft, Fft3, RealFft, RealFft3};
pub use pool::Pool;
