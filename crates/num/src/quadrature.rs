//! Gauss–Legendre quadrature on `[-1, 1]`.
//!
//! The TME middle-range shell (paper Eq. 6) is the exact integral
//!
//! ```text
//! g_{α,l}(r) = (1/2^{l-1}) (α/(2√π)) ∫_{-1}^{1} exp(-(((-u+3)/4) α r / 2^{l-1})²) du
//! ```
//!
//! which the paper approximates with the M-point Gauss–Legendre rule
//! (Eq. 7): nodes `u_ν` and weights `w_ν` become Gaussian exponents
//! `α_ν = ((−u_ν + 3)/4) α` and coefficients `c_ν = (α/(2√π)) w_ν`.
//!
//! Nodes are the roots of the Legendre polynomial `P_M`, found by Newton
//! iteration from the Tricomi initial guess; weights are
//! `w = 2 / ((1 − x²) P'_M(x)²)`.

/// A Gauss–Legendre rule: `nodes[i]` ∈ (−1, 1) ascending, matching `weights`.
#[derive(Clone, Debug)]
pub struct GaussLegendre {
    pub nodes: Vec<f64>,
    pub weights: Vec<f64>,
}

impl GaussLegendre {
    /// Build the `n`-point rule. Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "quadrature order must be at least 1");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        // Roots come in ± pairs; compute the non-negative half.
        let m = n.div_ceil(2);
        for i in 0..m {
            // Tricomi/Chebyshev initial guess for the (i+1)-th root from the top.
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            for _ in 0..100 {
                let (p, d) = legendre_and_derivative(n, x);
                let dx = p / d;
                x -= dx;
                if dx.abs() < 1e-16 {
                    break;
                }
            }
            // One clean-up iteration for full double precision.
            let (p, d) = legendre_and_derivative(n, x);
            x -= p / d;
            let dp = legendre_and_derivative(n, x).1;
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            nodes[n - 1 - i] = x;
            weights[n - 1 - i] = w;
            nodes[i] = -x;
            weights[i] = w;
        }
        if n % 2 == 1 {
            // The middle node of an odd rule is exactly 0.
            nodes[n / 2] = 0.0;
            let d = legendre_and_derivative(n, 0.0).1;
            weights[n / 2] = 2.0 / (d * d);
        }
        Self { nodes, weights }
    }

    /// Approximate `∫_{-1}^{1} f(u) du`.
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }

    /// Approximate `∫_{a}^{b} f(x) dx` by affine change of variables.
    pub fn integrate_on(&self, a: f64, b: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        half * self.integrate(|u| f(mid + half * u))
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// `(P_n(x), P'_n(x))` via the three-term recurrence.
fn legendre_and_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0; // P_0
    let mut p1 = x; // P_1
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // P'_n(x) = n (x P_n − P_{n−1}) / (x² − 1)
    let d = n as f64 * (x * p1 - p0) / (x * x - 1.0);
    (p1, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_point_rule_is_exact() {
        let q = GaussLegendre::new(2);
        let s = 1.0 / 3f64.sqrt();
        assert!((q.nodes[0] + s).abs() < 1e-15);
        assert!((q.nodes[1] - s).abs() < 1e-15);
        assert!((q.weights[0] - 1.0).abs() < 1e-15);
        assert!((q.weights[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn three_point_rule_matches_closed_form() {
        let q = GaussLegendre::new(3);
        assert!((q.nodes[1]).abs() < 1e-15);
        assert!((q.nodes[2] - (0.6f64).sqrt()).abs() < 1e-15);
        assert!((q.weights[1] - 8.0 / 9.0).abs() < 1e-15);
        assert!((q.weights[0] - 5.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn weights_sum_to_two() {
        for n in 1..=64 {
            let q = GaussLegendre::new(n);
            let s: f64 = q.weights.iter().sum();
            assert!((s - 2.0).abs() < 1e-13, "n={n}, sum={s}");
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_degree_2n_minus_1() {
        for n in 1..=10 {
            let q = GaussLegendre::new(n);
            for deg in 0..2 * n {
                let val = q.integrate(|x| x.powi(deg as i32));
                let exact = if deg % 2 == 1 {
                    0.0
                } else {
                    2.0 / (deg as f64 + 1.0)
                };
                assert!(
                    (val - exact).abs() < 1e-13,
                    "n={n} deg={deg} got={val} want={exact}"
                );
            }
        }
    }

    #[test]
    fn nodes_ascending_and_inside_interval() {
        for n in 1..=40 {
            let q = GaussLegendre::new(n);
            for w in q.nodes.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(q.nodes.iter().all(|x| x.abs() < 1.0));
            assert!(q.weights.iter().all(|w| *w > 0.0));
        }
    }

    #[test]
    fn integrates_gaussian_accurately() {
        // ∫_{-1}^{1} e^{-x²} dx = √π erf(1)
        let exact = crate::special::SQRT_PI * crate::special::erf(1.0);
        let q = GaussLegendre::new(12);
        let got = q.integrate(|x| (-x * x).exp());
        assert!((got - exact).abs() < 1e-14);
    }

    #[test]
    fn integrate_on_shifted_interval() {
        // ∫_{1/2}^{1} u² du = 7/24, the kind of interval Eq. (5) uses.
        let q = GaussLegendre::new(4);
        let got = q.integrate_on(0.5, 1.0, |u| u * u);
        assert!((got - 7.0 / 24.0).abs() < 1e-15);
    }
}
