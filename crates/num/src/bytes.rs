//! Minimal binary codec for checkpoint files.
//!
//! Checkpoint/restart (DESIGN.md §11) needs an in-tree serialisation layer
//! with two properties the workspace's determinism contract imposes:
//!
//! * **Bit transparency** — `f64` values round-trip through
//!   [`f64::to_bits`]/[`f64::from_bits`], so a restored state is bitwise
//!   identical to the saved one (including negative zeros and NaN
//!   payloads, which a textual format would destroy).
//! * **No panics** — reads return [`CodecError`] on truncated or
//!   malformed input; a corrupt checkpoint must surface as a typed error
//!   the caller can answer (fall back to an older checkpoint, restart
//!   from scratch), never as an abort.
//!
//! All integers are little-endian. The format carries no self-description;
//! each consumer writes its own magic/version header with these
//! primitives and validates it on read.

/// A decode failure: the buffer ended early or a header field did not
/// match what the reader expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ran out at byte `at` while `needed` more were required.
    UnexpectedEof { at: usize, needed: usize },
    /// A header/tag word did not match (`want` expected, `got` found).
    BadTag { at: usize, want: u64, got: u64 },
    /// A declared length is implausible for the remaining buffer.
    BadLength { at: usize, len: u64 },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 { at: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnexpectedEof { at, needed } => {
                write!(
                    f,
                    "checkpoint truncated at byte {at} ({needed} more needed)"
                )
            }
            Self::BadTag { at, want, got } => write!(
                f,
                "bad checkpoint tag at byte {at}: expected {want:#018x}, got {got:#018x}"
            ),
            Self::BadLength { at, len } => {
                write!(f, "implausible length {len} at byte {at}")
            }
            Self::BadUtf8 { at } => {
                write!(f, "length-prefixed string at byte {at} is not valid UTF-8")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` is stored as `u64` so the format is identical across
    /// pointer widths.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Bit-transparent float write (see module docs).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Raw bytes, *not* length-prefixed (frame payloads whose length the
    /// outer container already carries).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string (counterpart of
    /// [`ByteReader::get_str`]).
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed `[f64; 3]` slice (positions, velocities, forces).
    pub fn put_v3_slice(&mut self, vs: &[[f64; 3]]) {
        self.put_usize(vs.len());
        for v in vs {
            self.put_f64(v[0]);
            self.put_f64(v[1]);
            self.put_f64(v[2]);
        }
    }
}

/// Cursor-based decoder; every read is bounds-checked and returns a
/// [`CodecError`] instead of panicking.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                at: self.pos,
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a `u64` length and validate it against the remaining bytes
    /// (each element at least `elem_bytes` wide), so a corrupt length
    /// cannot drive an enormous allocation.
    pub fn get_len(&mut self, elem_bytes: usize) -> Result<usize, CodecError> {
        let at = self.pos;
        let len = self.get_u64()?;
        let need = len.saturating_mul(elem_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(CodecError::BadLength { at, len });
        }
        Ok(len as usize)
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Borrow `n` raw bytes (counterpart of [`ByteWriter::put_raw`]).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Length-prefixed UTF-8 string (counterpart of
    /// [`ByteWriter::put_str`]). Rejects invalid UTF-8 with
    /// [`CodecError::BadUtf8`] instead of lossily converting.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_len(1)?;
        let at = self.pos;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8 { at })
    }

    /// Read a `u64` and require it to equal `want` — magic/version checks.
    pub fn expect_u64(&mut self, want: u64) -> Result<(), CodecError> {
        let at = self.pos;
        let got = self.get_u64()?;
        if got != want {
            return Err(CodecError::BadTag { at, want, got });
        }
        Ok(())
    }

    /// Length-prefixed `f64` slice (counterpart of
    /// [`ByteWriter::put_f64_slice`]).
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.get_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Length-prefixed `[f64; 3]` slice (counterpart of
    /// [`ByteWriter::put_v3_slice`]).
    pub fn get_v3_vec(&mut self) -> Result<Vec<[f64; 3]>, CodecError> {
        let len = self.get_len(24)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push([self.get_f64()?, self.get_f64()?, self.get_f64()?]);
        }
        Ok(out)
    }

    /// True when every byte has been consumed — callers use this to
    /// reject trailing garbage after a successful decode.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = Result<(), CodecError>;

    #[test]
    fn round_trip_preserves_bits() -> TestResult {
        let mut w = ByteWriter::new();
        w.put_u64(0xDEAD_BEEF_0BAD_F00D);
        w.put_u8(7);
        w.put_u32(1234);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f64_slice(&[1.5, -2.25, 1e-308]);
        w.put_v3_slice(&[[0.1, 0.2, 0.3], [f64::INFINITY, -1.0, 4.0]]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u64()?, 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(r.get_u8()?, 7);
        assert_eq!(r.get_u32()?, 1234);
        assert_eq!(r.get_f64()?.to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64()?.to_bits(), f64::NAN.to_bits());
        let xs = r.get_f64_vec()?;
        assert_eq!(xs, vec![1.5, -2.25, 1e-308]);
        let vs = r.get_v3_vec()?;
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1][0], f64::INFINITY);
        assert!(r.is_empty());
        Ok(())
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        match r.get_u64() {
            Err(CodecError::UnexpectedEof { at: 0, needed: 3 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_tag_reports_both_values() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        match r.expect_u64(2) {
            Err(CodecError::BadTag {
                at: 0,
                want: 2,
                got: 1,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() -> TestResult {
        let mut w = ByteWriter::new();
        w.put_str("plan cache α=3.2 \"quoted\"");
        w.put_raw(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str()?, "plan cache α=3.2 \"quoted\"");
        assert_eq!(r.get_raw(2)?, &[0xff, 0xfe]);
        assert!(r.is_empty());
        // A length-prefixed blob of invalid UTF-8 is a typed error.
        let mut w = ByteWriter::new();
        w.put_usize(2);
        w.put_raw(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::BadUtf8 { at: 8 }));
        Ok(())
    }

    #[test]
    fn corrupt_length_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        match r.get_f64_vec() {
            Err(CodecError::BadLength { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
