//! Minimal complex arithmetic for the FFT and SPME reciprocal-space code.
//!
//! Only what the library needs: no external dependency, `f64` and `f32`
//! variants (the `f32` one mirrors the single-precision FPGA datapath of the
//! top-level convolution, §IV.C of the paper).

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Double-precision complex number.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

/// Single-precision complex number (FPGA datapath emulation).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex32 {
    pub re: f32,
    pub im: f32,
}

macro_rules! impl_complex {
    ($name:ident, $t:ty) => {
        impl $name {
            pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
            pub const ONE: Self = Self { re: 1.0, im: 0.0 };

            #[inline]
            pub const fn new(re: $t, im: $t) -> Self {
                Self { re, im }
            }

            /// `e^{iθ} = cos θ + i sin θ`.
            #[inline]
            pub fn cis(theta: $t) -> Self {
                Self {
                    re: theta.cos(),
                    im: theta.sin(),
                }
            }

            #[inline]
            pub fn conj(self) -> Self {
                Self {
                    re: self.re,
                    im: -self.im,
                }
            }

            /// Squared modulus `|z|²`.
            #[inline]
            pub fn norm_sqr(self) -> $t {
                self.re * self.re + self.im * self.im
            }

            #[inline]
            pub fn abs(self) -> $t {
                self.norm_sqr().sqrt()
            }

            /// Multiply by the imaginary unit: `i·z = (−im, re)`.
            #[inline]
            pub fn mul_i(self) -> Self {
                Self {
                    re: -self.im,
                    im: self.re,
                }
            }

            /// Scale by a real factor.
            #[inline]
            pub fn scale(self, s: $t) -> Self {
                Self {
                    re: self.re * s,
                    im: self.im * s,
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, o: Self) -> Self {
                Self {
                    re: self.re + o.re,
                    im: self.im + o.im,
                }
            }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, o: Self) -> Self {
                Self {
                    re: self.re - o.re,
                    im: self.im - o.im,
                }
            }
        }
        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, o: Self) -> Self {
                Self {
                    re: self.re * o.re - self.im * o.im,
                    im: self.re * o.im + self.im * o.re,
                }
            }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self {
                    re: -self.re,
                    im: -self.im,
                }
            }
        }
        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, o: Self) {
                *self = *self + o;
            }
        }
        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, o: Self) {
                *self = *self - o;
            }
        }
        impl MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, o: Self) {
                *self = *self * o;
            }
        }
    };
}

impl_complex!(Complex64, f64);
impl_complex!(Complex32, f32);

impl Complex64 {
    /// Lossy narrowing to the single-precision FPGA representation.
    #[inline]
    pub fn to_c32(self) -> Complex32 {
        Complex32 {
            re: self.re as f32,
            im: self.im as f32,
        }
    }
}

impl Complex32 {
    /// Widening back to double precision.
    #[inline]
    pub fn to_c64(self) -> Complex64 {
        Complex64 {
            re: self.re as f64,
            im: self.im as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        let c = Complex64::new(4.0, 0.5);
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!((lhs - rhs).abs() < 1e-14);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a + Complex64::ZERO, a);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..64 {
            let z = Complex64::cis(k as f64 * 0.1);
            assert!((z.abs() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let a = Complex64::new(3.0, -4.0);
        let i = Complex64::new(0.0, 1.0);
        assert_eq!(a.mul_i(), a * i);
    }

    #[test]
    fn conj_product_is_norm() {
        let a = Complex64::new(2.0, 7.0);
        let p = a * a.conj();
        assert!((p.re - a.norm_sqr()).abs() < 1e-13);
        assert!(p.im.abs() < 1e-13);
    }
}
