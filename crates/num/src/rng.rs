//! Deterministic pseudo-random numbers for tests, benchmarks and system
//! builders.
//!
//! The workspace must build with zero external dependencies (the build
//! environments it targets have no registry access), and — more importantly
//! for a numerical-methods reproduction — every "random" system we construct
//! must be bit-identical across platforms, toolchains and dependency
//! upgrades, because the paper's accuracy comparisons (§III.C, Table 2) are
//! only meaningful on deterministic inputs. A vendored RNG pins the stream
//! forever; an external crate's stream can change under us.
//!
//! [`SplitMix64`] is Steele, Lea & Flood's 64-bit mixer (the stream used to
//! seed xoshiro/xorshift generators). It passes BigCrush, needs eight bytes
//! of state, and is unambiguous to re-implement — exactly what reproducible
//! test fixtures want. It is **not** cryptographic and must never be used
//! for anything security-sensitive.

use std::ops::Range;

/// Splittable 64-bit generator with a deterministic, platform-independent
/// stream. Drop-in for the narrow `rand` API surface this workspace used:
/// `seed_from_u64` + `gen_range` on `f64`/`usize` ranges.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds give equal streams on every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Current internal state — everything a checkpoint needs to resume
    /// the stream bit-for-bit (see [`Self::from_state`]).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator mid-stream from a [`Self::state`] snapshot.
    /// `from_state(r.state())` continues exactly where `r` left off.
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 random bits (every f64 in the
    /// range is reachable at its natural spacing).
    pub fn uniform(&mut self) -> f64 {
        // 2^-53 scaling of the top 53 bits; exact in f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[range.start, range.end)`.
    ///
    /// Mirrors `rand::Rng::gen_range` for the half-open float ranges used
    /// throughout the test suites.
    pub fn gen_range(&mut self, range: Range<f64>) -> f64 {
        debug_assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "gen_range needs a finite non-empty range, got {range:?}"
        );
        range.start + (range.end - range.start) * self.uniform()
    }

    /// Uniform integer draw from `[0, n)`. Panics in debug builds if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index needs a non-empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // far below anything a fixture can observe.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize //
    }

    /// Standard normal draw (Box–Muller, cosine branch).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.gen_range(f64::MIN_POSITIVE..1.0);
            let u2 = self.uniform();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_matches_reference() {
        // First three outputs of SplitMix64 seeded with 1234567, from the
        // published reference implementation.
        let mut r = SplitMix64::seed_from_u64(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        let mut r2 = SplitMix64::seed_from_u64(1234567);
        assert_eq!(a, r2.next_u64());
        assert_eq!(b, r2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut r = SplitMix64::seed_from_u64(88);
        let _ = r.next_u64();
        let snap = r.state();
        let want: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let mut resumed = SplitMix64::from_state(snap);
        let got: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_mean() {
        let mut r = SplitMix64::seed_from_u64(42);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let x = r.gen_range(-2.0..6.0);
            assert!((-2.0..6.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gen_index_covers_range() {
        let mut r = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = SplitMix64::seed_from_u64(7);
        let n = 50_000;
        let (mut m1, mut m2) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.normal();
            m1 += z;
            m2 += z * z;
        }
        m1 /= f64::from(n);
        m2 /= f64::from(n);
        assert!(m1.abs() < 0.02, "mean {m1}");
        assert!((m2 - 1.0).abs() < 0.03, "variance {m2}");
    }
}
