//! Checked float↔integer conversions for grid indexing.
//!
//! A bare `f64 as i64` silently saturates on overflow and maps NaN to 0
//! (since Rust 1.45), so an upstream numerical bug — an infinite box
//! length, a NaN coordinate — turns into a *plausible-looking grid index*
//! and corrupts charge assignment instead of failing loudly. The `tme-lint`
//! rule **L1** bans lossy `as` casts between floats and integers in the
//! numeric kernel crates; these helpers are the sanctioned replacement.
//! Each one debug-asserts finiteness and representability, then performs
//! the cast with an inline waiver, so release builds pay nothing and debug
//! builds catch the corruption at the conversion site.

/// Exactly representable i64 bound for f64 round-trips: |x| ≤ 2^53 keeps
/// every integer exact, which is far beyond any grid index this workspace
/// can produce.
const EXACT_BOUND: f64 = 9_007_199_254_740_992.0; // 2^53

#[inline]
fn checked(x: f64, what: &str) -> f64 {
    debug_assert!(
        x.is_finite() && x.abs() <= EXACT_BOUND,
        "{what}: {x} is not a finite exactly-representable integer candidate"
    );
    x
}

/// `x.floor()` as an `i64`, debug-asserting `x` is finite and in range.
#[inline]
#[must_use]
pub fn floor_i64(x: f64) -> i64 {
    checked(x, "floor_i64").floor() as i64 // lint:allow(l1) — the checked helper itself
}

/// `x.ceil()` as an `i64`, debug-asserting `x` is finite and in range.
#[inline]
#[must_use]
pub fn ceil_i64(x: f64) -> i64 {
    checked(x, "ceil_i64").ceil() as i64 // lint:allow(l1) — the checked helper itself
}

/// `x.round()` as an `i64`, debug-asserting `x` is finite and in range.
#[inline]
#[must_use]
pub fn round_i64(x: f64) -> i64 {
    checked(x, "round_i64").round() as i64 // lint:allow(l1) — the checked helper itself
}

/// `x.floor()` as a `usize`, debug-asserting `x` is finite, non-negative
/// and in range — the grid-indexing workhorse.
#[inline]
#[must_use]
pub fn floor_usize(x: f64) -> usize {
    let f = checked(x, "floor_usize").floor();
    debug_assert!(f >= 0.0, "floor_usize: {x} is negative");
    f as usize // lint:allow(l1) — the checked helper itself
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_matches_bare_casts_in_range() {
        for x in [-3.7, -3.0, -0.2, 0.0, 0.4, 1.0, 7.9, 1e9] {
            assert_eq!(floor_i64(x), x.floor() as i64);
            assert_eq!(ceil_i64(x), x.ceil() as i64);
            assert_eq!(round_i64(x), x.round() as i64);
        }
        assert_eq!(floor_usize(7.9), 7);
        assert_eq!(floor_usize(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "floor_i64")]
    #[cfg(debug_assertions)]
    fn nan_is_caught() {
        let _ = floor_i64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "floor_usize")]
    #[cfg(debug_assertions)]
    fn negative_grid_index_is_caught() {
        let _ = floor_usize(-1.5);
    }
}
