//! Segmented-polynomial tables for the Ewald pair kernels.
//!
//! MDGRAPE-4A never evaluates transcendentals in its force pipelines: the
//! nonbond units implement `g(r²)` by *segmented table lookup with
//! polynomial interpolation* (paper §II — the same structure the earlier
//! MDGRAPE generations and Anton's pairwise point interaction modules use).
//! This module mirrors that design in software. The independent variable is
//! `s = r²` — exactly what the hardware uses, because the pair distance is
//! produced as a squared norm and a square root would cost another pipeline
//! stage.
//!
//! Two smooth functions are tabulated over uniform segments of `[0, r_max²]`
//! as degree-[`DEG`] polynomials fit at Chebyshev nodes:
//!
//! * `V(s) = erf(α√s)/√s` — the long-range (mesh-complement) energy kernel;
//!   analytic in `s` with `V(0) = 2α/√π`.
//! * `F(s) = (V(s) − (2α/√π)·e^{−α²s})/s` — its radial force factor, also
//!   analytic with `F(0) = (2α/√π)·2α²/3`.
//!
//! Both short- and long-range kernels derive from the pair:
//!
//! * `erf(αr)/r` energy/force = `(V, F)` directly — no square root at all;
//! * `erfc(αr)/r` energy/force = `(1/r − V, 1/r³ − F)` — one square root,
//!   using `erfc = 1 − erf` exactly (the complement identity in `s`).
//!
//! The fit error is ~1 ulp (see the error budget in DESIGN.md §10): with
//! segments of width `Δ(α²s) ≤ 1/8` the degree-8 Chebyshev remainder is
//! below 1e-16 relative, so the table is *more* accurate than the A&S
//! rational approximation previously used in the MD inner loops while
//! costing no `exp`/`erf` at all. The exact series/continued-fraction path
//! ([`crate::special`]) stays as the reference oracle; property tests bound
//! the table against it at ≤1e-10 relative energy error over `[0, r_cut]`.

use crate::cast::floor_usize;
use crate::special::{erf, TWO_OVER_SQRT_PI};

/// Polynomial degree per segment (9 coefficients, Horner-evaluated).
pub const DEG: usize = 8;
const NCOEF: usize = DEG + 1;

/// Per-segment coefficient block: `V` coefficients then `F` coefficients,
/// interleaved per segment so one cache line covers most of a lookup.
type Segment = [f64; 2 * NCOEF];

/// Tabulated `erf(αr)/r` / `erfc(αr)/r` energy+force pair kernels on
/// `r ∈ [0, r_max]`, indexed by `r²`.
///
/// Built once at plan time ([`PairKernelTable::new`]); lookups are pure
/// float arithmetic (segment index, two Horner chains) and therefore
/// bitwise-deterministic regardless of thread count.
#[derive(Clone, Debug)]
pub struct PairKernelTable {
    alpha: f64,
    r_max: f64,
    s_max: f64,
    /// Segments per unit `s`: `idx = floor(s · inv_h)`.
    inv_h: f64,
    segs: Vec<Segment>,
}

impl PairKernelTable {
    /// Build the table for splitting parameter `alpha` covering pair
    /// distances up to `r_max` (use the neighbour-list cutoff, not the
    /// force cutoff, so every listed pair is in range).
    ///
    /// Segment width is chosen so `Δ(α²s) ≤ 1/8`, keeping the degree-8
    /// Chebyshev fit at ulp-level accuracy for any `alpha`.
    pub fn new(alpha: f64, r_max: f64) -> Self {
        // α = 0 is allowed: V ≡ F ≡ 0 and the erfc kernel degenerates to
        // the bare Coulomb 1/r — what an unscreened cutoff solver needs.
        assert!(
            alpha >= 0.0 && r_max > 0.0 && alpha.is_finite() && r_max.is_finite(),
            "PairKernelTable needs finite positive r_max ({r_max}) and alpha ≥ 0 ({alpha})"
        );
        let s_max = r_max * r_max;
        let u_max = alpha * alpha * s_max;
        let n_seg = ((u_max * 8.0).ceil().max(32.0) as usize).min(4096); // lint:allow(l1) — bounded by the min/max clamps
        let h = s_max / n_seg as f64;
        let inv_h = n_seg as f64 / s_max;
        let mut segs = Vec::with_capacity(n_seg);
        for i in 0..n_seg {
            let lo = i as f64 * h;
            let mut seg = [0.0; 2 * NCOEF];
            let v_fit = fit_segment(lo, h, |s| v_exact(alpha, s));
            let f_fit = fit_segment(lo, h, |s| f_exact(alpha, s));
            seg[..NCOEF].copy_from_slice(&v_fit);
            seg[NCOEF..].copy_from_slice(&f_fit);
            segs.push(seg);
        }
        Self {
            alpha,
            r_max,
            s_max,
            inv_h,
            segs,
        }
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Largest pair distance the table covers (lookups beyond it clamp to
    /// the last segment and lose accuracy — callers cut off before this).
    pub fn r_max(&self) -> f64 {
        self.r_max
    }

    pub fn segments(&self) -> usize {
        self.segs.len()
    }

    /// Whether a squared distance lies inside the tabulated range — callers
    /// with unbounded pair distances (exclusion corrections on stretched
    /// bonded pairs) fall back to the exact kernel outside it.
    #[inline]
    pub fn covers(&self, r2: f64) -> bool {
        r2 <= self.s_max
    }

    /// Raw tabulated pair `(V(s), F(s))` at `s = r²` — two Horner chains
    /// over one segment's coefficient block.
    #[inline]
    pub fn eval_vf(&self, s: f64) -> (f64, f64) {
        debug_assert!(
            s >= 0.0 && s <= self.s_max * (1.0 + 1e-9),
            "table lookup outside [0, r_max²]: s = {s}, s_max = {}",
            self.s_max
        );
        let x = s * self.inv_h;
        let i = floor_usize(x).min(self.segs.len() - 1);
        // Local Chebyshev variable t ∈ [−1, 1] within segment i.
        let t = 2.0 * (x - i as f64) - 1.0;
        let c = &self.segs[i];
        let mut v = c[DEG];
        let mut f = c[NCOEF + DEG];
        for k in (0..DEG).rev() {
            v = v * t + c[k];
            f = f * t + c[NCOEF + k];
        }
        (v, f)
    }

    /// Long-range kernel at squared distance `r2`: returns
    /// `(erf(αr)/r, (erf(αr)/r − 2α/√π·e^{−α²r²})/r²)` — energy and radial
    /// force factor, with *no* square root (both are smooth in `r²`).
    #[inline]
    pub fn erf_kernel_r2(&self, r2: f64) -> (f64, f64) {
        self.eval_vf(r2)
    }

    /// Short-range kernel at squared distance `r2`: returns
    /// `(erfc(αr)/r, erfc(αr)/r³ + 2α/√π·e^{−α²r²}/r²)` via the exact
    /// complement `erfc/r = 1/r − erf/r` — one square root per pair.
    #[inline]
    pub fn erfc_kernel_r2(&self, r2: f64) -> (f64, f64) {
        let (v, f) = self.eval_vf(r2);
        let inv_r = 1.0 / r2.sqrt();
        let inv_r3 = inv_r * inv_r * inv_r;
        (inv_r - v, inv_r3 - f)
    }

    /// Release-mode-checked [`Self::erf_kernel_r2`]: `None` when `r2` is
    /// outside the tabulated domain (including NaN), instead of the
    /// debug-only assert of the hot path. Recovery paths (DESIGN.md §11)
    /// use this to turn a domain violation into a typed error the caller
    /// can answer by falling back to the exact `erf`/`erfc`.
    #[inline]
    pub fn try_erf_kernel_r2(&self, r2: f64) -> Option<(f64, f64)> {
        // `covers` is false for NaN (NaN <= s_max is false); also reject
        // negative squared distances, which only corrupt input produces.
        if r2 >= 0.0 && self.covers(r2) {
            Some(self.erf_kernel_r2(r2))
        } else {
            None
        }
    }

    /// Release-mode-checked [`Self::erfc_kernel_r2`] (see
    /// [`Self::try_erf_kernel_r2`]).
    #[inline]
    pub fn try_erfc_kernel_r2(&self, r2: f64) -> Option<(f64, f64)> {
        if r2 > 0.0 && self.covers(r2) {
            Some(self.erfc_kernel_r2(r2))
        } else {
            None
        }
    }
}

/// Fit one segment `[lo, lo+h]` with a degree-[`DEG`] polynomial in the
/// local variable `t ∈ [−1, 1]`: sample at Chebyshev nodes, compute the
/// Chebyshev-basis interpolant, convert to monomial coefficients for
/// Horner evaluation (well-conditioned at this low degree).
fn fit_segment(lo: f64, h: f64, f: impl Fn(f64) -> f64) -> [f64; NCOEF] {
    // Chebyshev points of the first kind and the sampled values.
    let mut fx = [0.0; NCOEF];
    for (j, slot) in fx.iter_mut().enumerate() {
        let theta = std::f64::consts::PI * (j as f64 + 0.5) / NCOEF as f64;
        let t = theta.cos();
        *slot = f(lo + 0.5 * h * (t + 1.0));
    }
    // Chebyshev coefficients by the discrete cosine sum.
    let mut cheb = [0.0; NCOEF];
    for (k, ck) in cheb.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (j, &v) in fx.iter().enumerate() {
            let theta = std::f64::consts::PI * (j as f64 + 0.5) / NCOEF as f64;
            acc += v * (k as f64 * theta).cos();
        }
        *ck = acc * 2.0 / NCOEF as f64;
    }
    cheb[0] *= 0.5;
    // Accumulate c_k · T_k(t) in the monomial basis via the three-term
    // recurrence T_{k+1} = 2t·T_k − T_{k−1}.
    let mut mono = [0.0; NCOEF];
    let mut t_prev = [0.0; NCOEF]; // T_{k−1}
    let mut t_cur = [0.0; NCOEF]; // T_k
    t_prev[0] = 1.0; // T_0 = 1
    t_cur[1] = 1.0; // T_1 = t
    mono[0] += cheb[0];
    for (k, &ck) in cheb.iter().enumerate().skip(1) {
        for (m, &tc) in t_cur.iter().enumerate() {
            mono[m] += ck * tc;
        }
        if k + 1 < NCOEF {
            let mut t_next = [0.0; NCOEF];
            for m in 0..NCOEF - 1 {
                t_next[m + 1] = 2.0 * t_cur[m];
            }
            for (m, &tp) in t_prev.iter().enumerate() {
                t_next[m] -= tp;
            }
            t_prev = t_cur;
            t_cur = t_next;
        }
    }
    mono
}

/// Exact `V(s) = erf(α√s)/√s`, series near zero to dodge the 0/0 form.
fn v_exact(alpha: f64, s: f64) -> f64 {
    let u = alpha * alpha * s; // (αr)²
    if u <= 0.25 {
        // V = α·(2/√π)·Σ_{k≥0} (−u)^k / (k!(2k+1)); converges in ~10 terms.
        let mut sum = 0.0;
        let mut pow = 1.0; // (−u)^k / k!
        for k in 0..24u32 {
            sum += pow / (2 * k + 1) as f64;
            pow *= -u / (k + 1) as f64;
        }
        alpha * TWO_OVER_SQRT_PI * sum
    } else {
        let r = s.sqrt();
        erf(alpha * r) / r
    }
}

/// Exact `F(s) = (V(s) − (2α/√π)e^{−α²s})/s`, series near zero where the
/// numerator cancels to O(s).
fn f_exact(alpha: f64, s: f64) -> f64 {
    let u = alpha * alpha * s;
    if u <= 0.25 {
        // F = (2α³/√π)·Σ_{k≥1} (−1)^{k+1} u^{k−1} · 2k / (k!(2k+1)).
        let mut sum = 0.0;
        let mut pow = 1.0; // u^{k−1}·(−1)^{k+1}/k!-ish, built iteratively
        for k in 1..24u32 {
            let coeff = (2 * k) as f64 / ((2 * k + 1) as f64);
            sum += pow * coeff;
            pow *= -u / ((k + 1) as f64);
        }
        // pow above carries 1/k! built by the running division by (k+1):
        // k=1 term uses pow=1 (=1/1!), matching 2k/(k!(2k+1)) with the
        // division by k! folded into the recurrence.
        alpha * alpha * alpha * TWO_OVER_SQRT_PI * sum
    } else {
        let gauss = TWO_OVER_SQRT_PI * alpha * (-u).exp();
        (v_exact(alpha, s) - gauss) / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::erfc;

    #[test]
    fn v_exact_series_matches_direct_across_seam() {
        let alpha = 2.0;
        // u = 0.25 ⇒ s = 0.0625; probe both sides of the series hand-off.
        for &s in &[0.0624f64, 0.0625, 0.0626, 1e-12, 0.01] {
            let direct = erf(alpha * s.sqrt()) / s.sqrt();
            let v = v_exact(alpha, s);
            assert!(
                ((v - direct) / direct).abs() < 1e-13,
                "s={s}: {v} vs {direct}"
            );
        }
        assert!((v_exact(alpha, 0.0) - alpha * TWO_OVER_SQRT_PI).abs() < 1e-15);
    }

    #[test]
    fn f_exact_series_matches_direct_across_seam() {
        let alpha = 2.0;
        for &s in &[0.0624f64, 0.0626, 0.03, 0.06] {
            let gauss = TWO_OVER_SQRT_PI * alpha * (-alpha * alpha * s).exp();
            let direct = (erf(alpha * s.sqrt()) / s.sqrt() - gauss) / s;
            let f = f_exact(alpha, s);
            assert!(
                ((f - direct) / direct).abs() < 1e-11,
                "s={s}: {f} vs {direct}"
            );
        }
        // F(0) = (2α/√π)·2α²/3.
        let f0 = TWO_OVER_SQRT_PI * alpha * 2.0 * alpha * alpha / 3.0;
        assert!(((f_exact(alpha, 0.0) - f0) / f0).abs() < 1e-14);
    }

    #[test]
    fn table_reproduces_exact_kernels() {
        let alpha = 3.2;
        let r_max = 0.9;
        let table = PairKernelTable::new(alpha, r_max);
        for i in 1..=900 {
            let r = i as f64 * 1e-3;
            let (ve, fe) = table.erf_kernel_r2(r * r);
            let v_ref = erf(alpha * r) / r;
            assert!(((ve - v_ref) / v_ref).abs() < 1e-13, "erf energy at r={r}");
            let gauss = TWO_OVER_SQRT_PI * alpha * (-alpha * alpha * r * r).exp();
            let f_ref = (v_ref - gauss) / (r * r);
            assert!(((fe - f_ref) / f_ref).abs() < 1e-10, "erf force at r={r}");
            let (se, sf) = table.erfc_kernel_r2(r * r);
            let s_ref = erfc(alpha * r) / r;
            assert!(
                ((se - s_ref) / s_ref).abs() < 1e-10,
                "erfc energy at r={r}: {se} vs {s_ref}"
            );
            let sf_ref = s_ref / (r * r) + gauss / (r * r);
            assert!(
                ((sf - sf_ref) / sf_ref).abs() < 1e-10,
                "erfc force at r={r}"
            );
        }
    }

    #[test]
    fn complement_identity_holds_to_rounding() {
        // erfc_kernel + erf_kernel reconstruct 1/r and 1/r³ to within the
        // final subtraction's rounding (the same V/F values are added
        // back), so the split cannot leak kernel-approximation error.
        let table = PairKernelTable::new(2.5, 1.2);
        for i in 1..=40 {
            let r2 = i as f64 * 0.03;
            let (es, fs) = table.erfc_kernel_r2(r2);
            let (el, fl) = table.erf_kernel_r2(r2);
            let inv_r = 1.0 / r2.sqrt();
            let inv_r3 = inv_r * inv_r * inv_r;
            assert!((es + el - inv_r).abs() <= 2.0 * f64::EPSILON * inv_r);
            assert!((fs + fl - inv_r3).abs() <= 2.0 * f64::EPSILON * inv_r3);
        }
    }

    #[test]
    fn lookup_clamps_at_the_far_edge() {
        let table = PairKernelTable::new(2.0, 1.0);
        // Exactly s_max lands on the (clamped) last segment.
        let (v, _) = table.eval_vf(1.0);
        let want = erf(2.0) / 1.0;
        assert!(((v - want) / want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite positive")]
    fn rejects_negative_alpha() {
        let _ = PairKernelTable::new(-1.0, 1.0);
    }

    #[test]
    fn checked_lookups_reject_out_of_domain_inputs() {
        let table = PairKernelTable::new(2.0, 1.0);
        // In-domain: identical bits to the unchecked path.
        let r2 = 0.33;
        assert_eq!(table.try_erf_kernel_r2(r2), Some(table.erf_kernel_r2(r2)));
        assert_eq!(table.try_erfc_kernel_r2(r2), Some(table.erfc_kernel_r2(r2)));
        // Out of domain, NaN and nonsense inputs: typed rejection, even in
        // release builds where the hot-path debug_assert is compiled out.
        assert_eq!(table.try_erf_kernel_r2(1.5), None);
        assert_eq!(table.try_erf_kernel_r2(f64::NAN), None);
        assert_eq!(table.try_erf_kernel_r2(-0.1), None);
        assert_eq!(table.try_erfc_kernel_r2(0.0), None); // r = 0 singular
        assert_eq!(table.try_erfc_kernel_r2(f64::NAN), None);
    }

    #[test]
    fn zero_alpha_degenerates_to_bare_coulomb() {
        let table = PairKernelTable::new(0.0, 1.0);
        for i in 1..=10 {
            let r2 = i as f64 * 0.09;
            let (e, f) = table.erfc_kernel_r2(r2);
            let inv_r = 1.0 / r2.sqrt();
            assert!((e - inv_r).abs() <= 2.0 * f64::EPSILON * inv_r);
            let inv_r3 = inv_r * inv_r * inv_r;
            assert!((f - inv_r3).abs() <= 2.0 * f64::EPSILON * inv_r3);
        }
    }
}
