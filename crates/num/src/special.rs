//! Error function and complementary error function to near machine precision.
//!
//! The Ewald splitting (paper Eqs. 1–3) is written entirely in terms of
//! `erf`/`erfc`:
//!
//! * short range: `g_{α,S}(r) = erfc(αr)/r`
//! * long range:  `g_{α,L}(r) = erf(αr)/r`
//!
//! and the reference Ewald summation used to measure Table 1 force errors
//! needs `erfc` accurate in a *relative* sense down to `erfc(x) ≈ 1e-16`
//! (the paper chooses its reference parameters so the theoretical force
//! error factor is below `1e-15`).
//!
//! Strategy — two classical, provably convergent expansions:
//!
//! * `|x| ≤ 1.5`: the Maclaurin series
//!   `erf(x) = (2/√π) Σ_{n≥0} (−1)^n x^{2n+1} / (n! (2n+1))` — mild
//!   cancellation only (`erfc(1.5) ≈ 0.034`), keeping both `erf` and
//!   `erfc = 1 − erf` within a few ulps of full relative precision.
//! * `x > 1.5`: the Laplace continued fraction evaluated with the modified
//!   Lentz algorithm,
//!   `√π e^{x²} erfc(x) = 1 / (x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`,
//!   which converges quickly beyond 1.5 and is accurate in the relative
//!   sense for arbitrarily small `erfc`.

/// 2/sqrt(pi), the normalisation of the error function.
pub const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
/// sqrt(pi).
pub const SQRT_PI: f64 = TWO_OVER_SQRT_PI / 2.0 * std::f64::consts::PI;

/// Error function `erf(x)`, odd in `x`, accurate to ~1e-15 relative.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x <= 1.5 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Relative accuracy is preserved for large `x` (down to the underflow of
/// `exp(−x²)` near `x ≈ 26.6`), which the reference Ewald summation relies
/// on.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= 1.5 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Scaled complement `erfcx(x) = e^{x²} erfc(x)` for `x ≥ 0`.
///
/// Useful when `erfc(x)` underflows but the product with another
/// `e^{−x²}`-like factor is still meaningful.
pub fn erfcx(x: f64) -> f64 {
    assert!(x >= 0.0, "erfcx defined here for non-negative x only");
    if x <= 1.5 {
        (x * x).exp() * (1.0 - erf_series(x))
    } else {
        erfcx_cf(x)
    }
}

/// Maclaurin series for `erf`, valid (and used) on `0 ≤ x ≤ 1.5`.
fn erf_series(x: f64) -> f64 {
    debug_assert!((0.0..=1.5 + 1e-12).contains(&x));
    let x2 = x * x;
    let mut sum = x;
    // term_n = (−1)^n x^{2n+1} / (n! (2n+1)); build x^{2n+1}/n! iteratively.
    let mut power = x; // x^{2n+1}/n!
    let mut n = 1u32;
    loop {
        power *= -x2 / n as f64;
        let term = power / (2 * n + 1) as f64;
        sum += term;
        if term.abs() < 1e-18 * sum.abs().max(1e-300) {
            break;
        }
        n += 1;
        debug_assert!(n < 200, "erf series failed to converge");
    }
    sum * TWO_OVER_SQRT_PI
}

/// Laplace continued fraction for `e^{x²} erfc(x) √π`, `x > 1.5`.
fn erfcx_cf(x: f64) -> f64 {
    // Modified Lentz evaluation of 1/(x + a1/(x + a2/(x + ...))), a_n = n/2.
    const TINY: f64 = 1e-300;
    let b = x;
    let mut f = b.max(TINY);
    let mut c = f;
    let mut d = 0.0f64;
    let mut n = 1u32;
    loop {
        let a = n as f64 * 0.5;
        d = b + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 {
            break;
        }
        n += 1;
        if n > 600 {
            // Lentz is monotonically converging here; past this many terms
            // the remaining correction is far below the f64 ulp, so accept.
            break;
        }
    }
    1.0 / (f * SQRT_PI)
}

fn erfc_cf(x: f64) -> f64 {
    (-x * x).exp() * erfcx_cf(x)
}

/// Inverse complementary error function on (0, 1): the `x` with
/// `erfc(x) = y`, by bisection (erfc is strictly decreasing). This is how
/// the paper (and GROMACS `ewald-rtol`) turn a force tolerance into the
/// Ewald splitting parameter: `α = erfc_inv(rtol)/r_c`.
pub fn erfc_inv(y: f64) -> f64 {
    assert!(y > 0.0 && y < 1.0, "erfc_inv defined on (0, 1), got {y}");
    let (mut lo, mut hi) = (0.0f64, 30.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if erfc(mid) > y {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Fast `erfc` for molecular-dynamics inner loops: the Abramowitz &
/// Stegun 7.1.26 rational approximation, absolute error < 1.5e-7.
///
/// MD pair kernels evaluate `erfc(αr)` millions of times per step; a
/// *consistent* smooth approximation conserves energy exactly as well as
/// the exact function (forces stay the gradient of the approximate
/// energy), and 1.5e-7 sits far below the mesh discretisation error. The
/// reference Ewald summation (Table 1) keeps the exact [`erfc`].
#[inline]
pub fn erfc_fast(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc_fast(-x);
    }
    erfc_fast_parts(x).0
}

/// [`erfc_fast`] returning `(erfc(x), e^{−x²})` for `x ≥ 0` — pair kernels
/// need the Gaussian factor too (force term), and it is the expensive part.
#[inline]
pub fn erfc_fast_parts(x: f64) -> (f64, f64) {
    const P: f64 = 0.327_591_1;
    const A: [f64; 5] = [
        0.254_829_592,
        -0.284_496_736,
        1.421_413_741,
        -1.453_152_027,
        1.061_405_429,
    ];
    debug_assert!(x >= 0.0);
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A[0] + t * (A[1] + t * (A[2] + t * (A[3] + t * A[4]))));
    let gauss = (-x * x).exp();
    (poly * gauss, gauss)
}

#[cfg(test)]
#[allow(clippy::excessive_precision)] // reference tables keep full printed digits
mod tests {
    use super::*;

    /// Reference values computed with mpmath (50 digits), rounded to f64.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112462916018284892),
        (0.5, 0.520499877813046538),
        (1.0, 0.842700792949714869),
        (1.5, 0.966105146475310727),
        (2.0, 0.995322265018952734),
        (2.5, 0.999593047982555041),
        (3.0, 0.999977909503001415),
    ];

    const ERFC_TABLE: &[(f64, f64)] = &[
        (2.0, 4.67773498104726584e-3),
        (3.0, 2.20904969985854414e-5),
        (4.0, 1.54172579002800189e-8),
        (5.0, 1.53745979442803485e-12),
        (6.0, 2.15197367124989132e-17),
        (10.0, 2.08848758376254493e-45),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, v) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - v).abs() <= 4e-16 * v.abs().max(1.0),
                "erf({x}) = {got}, want {v}"
            );
        }
    }

    #[test]
    fn erfc_matches_reference_relatively() {
        for &(x, v) in ERFC_TABLE {
            let got = erfc(x);
            let rel = ((got - v) / v).abs();
            assert!(rel < 5e-14, "erfc({x}) = {got:e}, want {v:e}, rel {rel:e}");
        }
    }

    #[test]
    fn erf_is_odd_and_erfc_complements() {
        for i in 0..200 {
            let x = -4.0 + i as f64 * 0.04;
            assert!((erf(x) + erf(-x)).abs() < 1e-15);
            assert!((erf(x) + erfc(x) - 1.0).abs() < 2e-15, "x={x}");
        }
    }

    #[test]
    fn erf_monotone_increasing() {
        let mut prev = erf(-6.0);
        for i in 1..=1200 {
            let x = -6.0 + i as f64 * 0.01;
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    fn branch_seam_is_continuous() {
        // The series/continued-fraction hand-off at x = 1.5 must agree
        // (a ±1e-15 step moves the true value well below 1e-15 — any
        // branch mismatch would dominate).
        let lo = erfc(1.5 - 1e-15);
        let hi = erfc(1.5 + 1e-15);
        assert!(((lo - hi) / lo).abs() < 1e-12, "lo={lo:e} hi={hi:e}");
    }

    #[test]
    fn erfcx_consistent_with_erfc() {
        for &(x, v) in ERFC_TABLE {
            if x * x < 700.0 {
                let got = erfcx(x) * (-x * x).exp();
                assert!(((got - v) / v).abs() < 1e-13, "x={x}");
            }
        }
        // And where erfc underflows, erfcx stays finite and ~ 1/(x√π).
        let big = erfcx(30.0);
        let asymptote = 1.0 / (30.0 * SQRT_PI);
        assert!((big / asymptote - 1.0).abs() < 1e-3);
    }

    /// Independent large-x check: the divergent asymptotic expansion
    /// `erfcx(x) ≈ (1/(x√π)) Σ (−1)^n (2n−1)!!/(2x²)^n`, truncated at its
    /// smallest term, bounds the truncation error by that term.
    #[test]
    fn erfcx_matches_asymptotic_series_for_large_x() {
        for &x in &[7.0, 8.0, 12.0, 15.0, 20.0] {
            let inv2x2 = 1.0 / (2.0 * x * x);
            let mut mag = 1.0f64; // |term_n| = (2n−1)!!/(2x²)^n
            let mut sum = 1.0f64;
            let mut n = 1u32;
            loop {
                let next = mag * (2 * n - 1) as f64 * inv2x2;
                if next >= mag || next < 1e-18 {
                    break; // stop at the smallest term (or once negligible)
                }
                mag = next;
                sum += if n % 2 == 1 { -mag } else { mag };
                n += 1;
            }
            let asym = sum / (x * SQRT_PI);
            let rel = (erfcx(x) / asym - 1.0).abs();
            assert!(rel < 1e-12, "x={x} rel={rel:e}");
        }
    }

    /// The paper determines α from erfc(α r_c) = 1e-4, quoting
    /// α r_c ≈ 2.751064; check our erfc reproduces that root.
    #[test]
    fn paper_alpha_rc_root() {
        let v = erfc(2.751_064);
        assert!((v / 1e-4 - 1.0).abs() < 1e-5, "erfc(2.751064) = {v:e}");
    }

    #[test]
    fn erfc_fast_within_advertised_accuracy() {
        // A&S 7.1.26 claims |ε| ≤ 1.5e-7; verify against the exact erfc
        // over the whole range MD uses (αr ∈ [0, 12]).
        let mut worst = 0.0f64;
        for i in 0..=2400 {
            let x = i as f64 * 0.005;
            worst = worst.max((erfc_fast(x) - erfc(x)).abs());
        }
        assert!(worst < 1.6e-7, "max abs error {worst:e}");
        // Negative side via the reflection.
        assert!((erfc_fast(-1.0) - erfc(-1.0)).abs() < 1.6e-7);
    }

    #[test]
    fn erfc_inv_round_trips() {
        for &y in &[0.5, 1e-2, 1e-4, 1e-8, 1e-12] {
            let x = erfc_inv(y);
            assert!((erfc(x) / y - 1.0).abs() < 1e-10, "y={y}: x={x}");
        }
        // The paper's value: erfc_inv(1e-4) ≈ 2.751064.
        assert!((erfc_inv(1e-4) - 2.751_064).abs() < 1e-5);
    }

    #[test]
    fn erf_limits() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(10.0) - 1.0).abs() < 1e-16);
        assert!((erf(-10.0) + 1.0).abs() < 1e-16);
        assert!(erfc(40.0) >= 0.0);
    }
}
