//! Minimal in-tree scoped thread pool for deterministic data parallelism.
//!
//! The TME pipeline is embarrassingly parallel at several grain sizes (the
//! GCU streams independent grid lines, the LRU processes independent
//! particles), but the workspace is dependency-free, so this module provides
//! the smallest pool that supports the execute phase of the plan/execute
//! split:
//!
//! * **Persistent workers** — `threads - 1` worker threads are spawned once
//!   (the calling thread acts as worker 0) and parked on a condvar between
//!   dispatches. Dispatching a job copies a fat pointer into shared state
//!   and performs **no heap allocation**, which is what lets the steady-state
//!   `Tme::compute_with` execute loop stay allocation-free at any thread
//!   count.
//! * **Deterministic scheduling** — work is expressed as `parts` numbered
//!   chunks whose boundaries depend only on the part count, never on the
//!   thread count. Worker `w` of `T` statically owns parts
//!   `[parts·w/T, parts·(w+1)/T)`. Combined with the ordered-merge rule for
//!   reductions (accumulate per *part*, merge serially in part order, see
//!   `DESIGN.md` §9) this makes every result bitwise identical for any
//!   `TME_THREADS` value.
//! * **Panic propagation** — a panic in any worker (or in the caller's own
//!   share) is captured, the dispatch still quiesces, and the payload is
//!   re-raised on the calling thread.
//!
//! The pool size comes from `TME_THREADS` when set, otherwise from
//! [`std::thread::available_parallelism`]. Nested dispatches from inside a
//! pool closure run inline on the calling worker, so library code can use
//! the global pool without worrying about composition deadlocks.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Fixed part boundaries: part `part` of `parts` covers
/// `[len·part/parts, len·(part+1)/parts)`. Boundaries depend only on
/// `(len, parts)`, never on the executing thread count — the foundation of
/// the deterministic-reduction rule.
#[must_use]
pub fn chunk_bounds(len: usize, parts: usize, part: usize) -> (usize, usize) {
    (len * part / parts, len * (part + 1) / parts)
}

/// The ordered-merge rule as a named helper: fold per-part partial results
/// into `acc` serially, in ascending part index. Every reduction over pool
/// worker output must flow through this (or write disjoint regions via
/// [`SendPtr`]/[`Pool::for_each_chunk`]) so the floating-point accumulation
/// order — and therefore every bit of the result — is independent of the
/// thread count. `tme-analyze` rule a3 flags fan-out sites that merge any
/// other way.
pub fn merge_ordered<T, A>(parts: &[T], acc: &mut A, mut merge: impl FnMut(&mut A, usize, &T)) {
    for (part, p) in parts.iter().enumerate() {
        merge(acc, part, p);
    }
}

/// A dispatched job: a lifetime-erased borrow of the caller's closure plus
/// the static schedule it is run under.
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize, usize) + Sync),
    parts: usize,
    workers: usize,
}

struct State {
    /// Bumped once per dispatch; workers detect new work by epoch change.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current dispatch.
    remaining: usize,
    /// First panic payload captured from a worker this dispatch.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on new work (and shutdown).
    work: Condvar,
    /// Signalled when the last worker finishes a dispatch.
    done: Condvar,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// True while this thread is executing pool work (worker threads always,
    /// the calling thread during its own share). Nested dispatches run
    /// inline instead of deadlocking on the busy workers.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Blocks in `drop` until every worker has finished the current dispatch,
/// then clears the job. This runs even when the caller's own share panics,
/// so the lifetime-erased closure borrow can never dangle.
struct DispatchGuard<'a> {
    shared: &'a Shared,
}

impl Drop for DispatchGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        while st.remaining > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
    }
}

fn worker_main(shared: &Shared, w: usize) {
    IN_POOL.with(|flag| flag.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { continue };
        let (lo, hi) = chunk_bounds(job.parts, job.workers, w);
        let result = catch_unwind(AssertUnwindSafe(|| {
            for part in lo..hi {
                (job.f)(part, w);
            }
        }));
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// A fixed-size pool of persistent worker threads with deterministic static
/// scheduling. See the module docs for the execution model.
pub struct Pool {
    threads: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// `TME_THREADS` if set and parseable, else the OS-reported parallelism.
fn env_threads() -> usize {
    if let Some(t) = std::env::var("TME_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        return t.max(1);
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();

impl Pool {
    /// Pool with `threads` total workers (including the calling thread);
    /// clamped to at least 1. If the OS refuses to spawn a thread the pool
    /// degrades to however many workers it got.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            let sh = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("tme-pool-{w}"));
            match builder.spawn(move || worker_main(&sh, w)) {
                Ok(h) => handles.push(h),
                Err(_) => break,
            }
        }
        let threads = handles.len() + 1;
        Pool {
            threads,
            shared,
            handles,
        }
    }

    /// Pool sized from `TME_THREADS` (default: `available_parallelism`).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(env_threads())
    }

    /// The process-wide shared pool, created on first use from the
    /// environment. Library entry points that have no explicit pool use this.
    pub fn global() -> &'static Arc<Pool> {
        GLOBAL.get_or_init(|| Arc::new(Pool::from_env()))
    }

    /// Total worker count, including the calling thread.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(part, worker)` for every `part` in `0..parts`, distributed
    /// statically over the pool. `worker` is the index of the executing
    /// worker in `0..threads()`; at most one closure invocation runs per
    /// worker index at any instant, so `worker` may index per-worker scratch.
    ///
    /// Blocks until all parts are complete. Performs no heap allocation.
    /// Panics from any part are re-raised here after the dispatch quiesces.
    pub fn run_parts<F: Fn(usize, usize) + Sync>(&self, parts: usize, f: F) {
        if parts == 0 {
            return;
        }
        if self.threads == 1 || parts == 1 || IN_POOL.with(Cell::get) {
            for part in 0..parts {
                f(part, 0);
            }
            return;
        }
        let f_ref: &(dyn Fn(usize, usize) + Sync) = &f;
        // SAFETY: only the lifetime is transmuted (identical fat-pointer
        // layout). The erased borrow is published to workers below and
        // `DispatchGuard` blocks — even while unwinding — until every worker
        // has finished with it and the job slot is cleared, so the borrow
        // never outlives `f`.
        let f_static: &'static (dyn Fn(usize, usize) + Sync) =
            unsafe { std::mem::transmute(f_ref) };
        {
            let mut st = lock(&self.shared.state);
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(Job {
                f: f_static,
                parts,
                workers: self.threads,
            });
            st.remaining = self.threads - 1;
            st.panic = None;
            self.shared.work.notify_all();
        }
        IN_POOL.with(|flag| flag.set(true));
        let guard = DispatchGuard {
            shared: &self.shared,
        };
        let (lo, hi) = chunk_bounds(parts, self.threads, 0);
        let main_result = catch_unwind(AssertUnwindSafe(|| {
            for part in lo..hi {
                f(part, 0);
            }
        }));
        drop(guard);
        IN_POOL.with(|flag| flag.set(false));
        let worker_panic = lock(&self.shared.state).panic.take();
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Run `tasks` independent invocations `f(task)` across the pool.
    /// Convenience wrapper over [`Pool::run_parts`] for callers that do not
    /// need per-worker scratch.
    pub fn scope<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        self.run_parts(tasks, |part, _worker| f(part));
    }

    /// True when splitting `work_items` over this pool would leave each
    /// thread less than `min_per_thread` items of work. Below that point a
    /// dispatch costs more in wake-up/quiesce latency than the parallelism
    /// recovers, so callers should run the same part schedule inline
    /// ([`Pool::run_parts_sized`] does exactly that). The decision changes
    /// only *where* parts execute, never the part boundaries or the merge
    /// order, so results stay bitwise identical either way.
    #[must_use]
    pub fn should_serialize(&self, work_items: usize, min_per_thread: usize) -> bool {
        self.threads > 1 && work_items < min_per_thread.saturating_mul(self.threads)
    }

    /// [`Pool::run_parts`] with per-thread work sizing: when `work_items`
    /// split over the pool falls below `min_per_thread` items per thread
    /// (see [`Pool::should_serialize`]), every part runs inline on the
    /// calling thread — same parts, same order, same worker-0 scratch —
    /// instead of waking the workers. Bitwise-identical output by
    /// construction; only the dispatch cost changes.
    pub fn run_parts_sized<F: Fn(usize, usize) + Sync>(
        &self,
        parts: usize,
        work_items: usize,
        min_per_thread: usize,
        f: F,
    ) {
        if self.should_serialize(work_items, min_per_thread) {
            for part in 0..parts {
                f(part, 0);
            }
            return;
        }
        self.run_parts(parts, f);
    }

    /// Split `data` into consecutive chunks of `chunk_len` elements (the
    /// last may be short) and run `f(chunk_index, chunk)` for each across
    /// the pool. Chunk boundaries depend only on `(data.len(), chunk_len)`,
    /// so per-chunk results are reproducible at any thread count.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let len = data.len();
        if len == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let parts = len.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.run_parts(parts, |part, _worker| {
            let start = part * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: distinct parts cover pairwise-disjoint index ranges of
            // `data`, each part runs exactly once, and `run_parts` does not
            // return until all parts finish — so each reconstructed
            // sub-slice is an exclusive borrow for its part's duration.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(part, chunk);
        });
    }

    /// [`Pool::for_each_chunk`] with the per-thread work sizing of
    /// [`Pool::run_parts_sized`]: below `min_per_thread` items of
    /// `work_items` per thread the chunks run inline on the calling
    /// thread. Chunk boundaries and visit order are unchanged, so results
    /// are bitwise identical to the dispatched form.
    pub fn for_each_chunk_sized<T, F>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        work_items: usize,
        min_per_thread: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if self.should_serialize(work_items, min_per_thread) {
            let chunk_len = chunk_len.max(1);
            for (part, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(part, chunk);
            }
            return;
        }
        self.for_each_chunk(data, chunk_len, f);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Raw-pointer wrapper that lets pool closures hand out *disjoint* regions
/// of one buffer to different parts. Constructing one is safe; every
/// dereference needs its own `unsafe` block whose SAFETY argument explains
/// the disjointness.
#[derive(Debug)]
pub struct SendPtr<T>(pub *mut T);

impl<T> SendPtr<T> {
    /// The wrapped address. Use this (not field access) inside pool
    /// closures: edition-2021 disjoint capture would otherwise capture the
    /// bare `*mut T` field, which is not `Sync`.
    #[inline]
    #[must_use]
    pub fn get(self) -> *mut T {
        self.0
    }
}

// Manual impls: the derive would add unwanted `T: Copy`/`T: Clone` bounds
// (the wrapper copies an address, never a `T`).
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

// SAFETY: SendPtr is a plain address; sending it between threads is sound
// because all dereferences are gated behind caller `unsafe` blocks that must
// justify exclusive access to the region they touch.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same argument as Send — shared copies of the address are inert
// until a caller-justified `unsafe` dereference.
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn merge_ordered_folds_in_ascending_part_order() {
        let parts = [1.0f64, 2.0, 3.0, 4.0];
        let mut seen = Vec::new();
        let mut sum = 0.0;
        merge_ordered(&parts, &mut sum, |acc, part, p| {
            seen.push(part);
            *acc += *p;
        });
        assert_eq!(seen, [0, 1, 2, 3]);
        assert_eq!(sum, 10.0);
    }

    #[test]
    fn chunk_bounds_cover_range_without_overlap() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 13] {
                let mut next = 0;
                for part in 0..parts {
                    let (lo, hi) = chunk_bounds(len, parts, part);
                    assert_eq!(lo, next, "len={len} parts={parts} part={part}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn for_each_chunk_writes_every_element_once() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let mut data = vec![0u32; 1003];
            pool.for_each_chunk(&mut data, 17, |part, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + u32::try_from(part).unwrap_or(0);
                }
            });
            for (i, v) in data.iter().enumerate() {
                let part = i / 17;
                assert_eq!(*v, 1 + u32::try_from(part).unwrap_or(0), "i={i}");
            }
        }
    }

    #[test]
    fn reduction_is_identical_across_thread_counts() {
        // Per-part partial sums merged in part order must be bitwise stable
        // for any thread count (the deterministic-reduction rule).
        const PARTS: usize = 16;
        let data: Vec<f64> = (0..10_000).map(|i| f64::from(i).sin() * 1e-3).collect();
        let reduce = |pool: &Pool| {
            let mut partials = [0.0f64; PARTS];
            pool.for_each_chunk(&mut partials, 1, |part, slot| {
                let (lo, hi) = chunk_bounds(data.len(), PARTS, part);
                let mut acc = 0.0;
                for &x in &data[lo..hi] {
                    acc += x;
                }
                slot[0] = acc;
            });
            let mut total = 0.0;
            for p in &partials {
                total += p;
            }
            total
        };
        let serial = reduce(&Pool::new(1));
        for threads in [2usize, 3, 4, 8] {
            let got = reduce(&Pool::new(threads));
            assert_eq!(serial.to_bits(), got.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn every_part_runs_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(hits.len(), |part| {
            hits[part].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "part {i}");
        }
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let pool = Pool::new(4);
        let count = AtomicUsize::new(0);
        pool.run_parts(8, |_, _| {
            // A nested dispatch must not deadlock on the busy workers.
            pool.run_parts(4, |_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_parts(16, |part, _| {
                assert!(part != 11, "boom at part 11");
            });
        }));
        assert!(caught.is_err());
        // The pool must still be usable after a propagated panic.
        let count = AtomicUsize::new(0);
        pool.run_parts(16, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn chunk_bounds_len_smaller_than_parts() {
        // With fewer items than parts, every item is still covered exactly
        // once and the trailing parts are empty — never out of range.
        let (len, parts) = (3usize, 8usize);
        let mut next = 0;
        for part in 0..parts {
            let (lo, hi) = chunk_bounds(len, parts, part);
            assert_eq!(lo, next, "part={part}");
            assert!(hi >= lo && hi <= len, "part={part}");
            next = hi;
        }
        assert_eq!(next, len);
        // At least parts − len of the parts must be empty.
        let empty = (0..parts)
            .filter(|&p| {
                let (lo, hi) = chunk_bounds(len, parts, p);
                lo == hi
            })
            .count();
        assert!(empty >= parts - len);
    }

    #[test]
    fn chunk_bounds_empty_input() {
        for parts in [1usize, 2, 7] {
            for part in 0..parts {
                assert_eq!(chunk_bounds(0, parts, part), (0, 0));
            }
        }
    }

    #[test]
    fn chunk_bounds_single_part_covers_everything() {
        for len in [0usize, 1, 5, 1000] {
            assert_eq!(chunk_bounds(len, 1, 0), (0, len));
        }
    }

    /// Property test for the serial-fallback contract: for random work
    /// sizes, a sized dispatch forced serial (huge per-thread minimum) and
    /// the same dispatch forced parallel (zero minimum) must produce
    /// bitwise-identical reductions on a multi-thread pool.
    #[test]
    fn serial_fallback_is_bitwise_identical_to_forced_parallel() {
        const PARTS: usize = 16;
        let pool = Pool::new(4);
        let mut rng = crate::rng::SplitMix64::seed_from_u64(0xB17);
        for trial in 0..20 {
            let len = 1 + (rng.next_u64() as usize % 5000);
            let data: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let reduce = |min_per_thread: usize| {
                let mut partials = [0.0f64; PARTS];
                let slots = SendPtr(partials.as_mut_ptr());
                pool.run_parts_sized(PARTS, len, min_per_thread, |part, _| {
                    let (lo, hi) = chunk_bounds(data.len(), PARTS, part);
                    let mut acc = 0.0;
                    for &x in &data[lo..hi] {
                        acc += (x * 3.7).sin() * x;
                    }
                    // SAFETY: each part writes only its own slot.
                    unsafe {
                        *slots.get().add(part) = acc;
                    }
                });
                let mut total = 0.0;
                merge_ordered(&partials, &mut total, |t, _, p| *t += *p);
                total
            };
            let serial = reduce(usize::MAX); // always below threshold -> inline
            assert!(pool.should_serialize(len, usize::MAX));
            let parallel = reduce(0); // never below threshold -> dispatched
            assert!(!pool.should_serialize(len, 0));
            assert_eq!(
                serial.to_bits(),
                parallel.to_bits(),
                "trial={trial} len={len}"
            );
        }
    }

    #[test]
    fn sized_chunk_dispatch_matches_plain_dispatch() {
        let pool = Pool::new(4);
        for min_per_thread in [0usize, usize::MAX] {
            let mut data = vec![0u32; 317];
            let items = data.len();
            pool.for_each_chunk_sized(&mut data, 10, items, min_per_thread, |part, chunk| {
                for v in chunk.iter_mut() {
                    *v = 1 + u32::try_from(part).unwrap_or(0);
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 1 + u32::try_from(i / 10).unwrap_or(0), "i={i}");
            }
        }
    }

    #[test]
    fn pool_reports_at_least_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::from_env().threads() >= 1);
        assert!(Pool::global().threads() >= 1);
    }
}
