//! Plain `[f64; 3]` vector helpers and periodic minimum-image geometry.
//!
//! The GP cores of MDGRAPE-4A carry a 4-way SIMD extension "to efficiently
//! manipulate 3D vectors"; here the equivalent is a set of `#[inline]`
//! free functions over `[f64; 3]` that the compiler auto-vectorises.

pub type V3 = [f64; 3];

#[inline]
pub fn add(a: V3, b: V3) -> V3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

#[inline]
pub fn sub(a: V3, b: V3) -> V3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

#[inline]
pub fn scale(a: V3, s: f64) -> V3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

#[inline]
pub fn dot(a: V3, b: V3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[inline]
pub fn cross(a: V3, b: V3) -> V3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

#[inline]
pub fn norm_sqr(a: V3) -> f64 {
    dot(a, a)
}

#[inline]
pub fn norm(a: V3) -> f64 {
    norm_sqr(a).sqrt()
}

/// Accumulate `a += b` in place.
#[inline]
pub fn acc(a: &mut V3, b: V3) {
    a[0] += b[0];
    a[1] += b[1];
    a[2] += b[2];
}

/// Minimum-image displacement `a − b` in a periodic orthorhombic box.
#[inline]
pub fn min_image(a: V3, b: V3, box_l: V3) -> V3 {
    let mut d = sub(a, b);
    for j in 0..3 {
        d[j] -= box_l[j] * (d[j] / box_l[j]).round();
    }
    d
}

/// Wrap a position into `[0, L)` per axis.
#[inline]
pub fn wrap(mut r: V3, box_l: V3) -> V3 {
    for j in 0..3 {
        r[j] -= box_l[j] * (r[j] / box_l[j]).floor();
        // Guard against r[j] == L after rounding.
        if r[j] >= box_l[j] {
            r[j] -= box_l[j];
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_is_orthogonal() {
        let a = [1.0, 2.0, 3.0];
        let b = [-0.5, 4.0, 1.0];
        let c = cross(a, b);
        assert!(dot(a, c).abs() < 1e-14);
        assert!(dot(b, c).abs() < 1e-14);
    }

    #[test]
    fn min_image_stays_within_half_box() {
        let l = [2.0, 3.0, 4.0];
        let a = [1.9, 0.1, 3.9];
        let b = [0.1, 2.9, 0.2];
        let d = min_image(a, b, l);
        for j in 0..3 {
            assert!(d[j].abs() <= l[j] / 2.0 + 1e-12);
        }
        // Direct distance 1.8 along x wraps to −0.2.
        assert!((d[0] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn wrap_into_box() {
        let l = [2.0, 2.0, 2.0];
        let r = wrap([-0.1, 4.3, 1.999_999], l);
        assert!(r.iter().zip(&l).all(|(x, lj)| *x >= 0.0 && *x < *lj));
        assert!((r[0] - 1.9).abs() < 1e-12);
        assert!((r[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn min_image_antisymmetric() {
        let l = [3.0, 3.0, 3.0];
        let a = [0.2, 1.7, 2.9];
        let b = [2.8, 0.3, 0.1];
        let d1 = min_image(a, b, l);
        let d2 = min_image(b, a, l);
        for j in 0..3 {
            assert!((d1[j] + d2[j]).abs() < 1e-12);
        }
    }
}
