//! Power-of-two complex FFTs and 3-D transforms.
//!
//! Three pieces, matching how the paper uses Fourier transforms:
//!
//! * [`Fft`] — an iterative radix-2 Cooley–Tukey plan for any power of two.
//!   Used by the SPME baseline (any grid 16³–128³) and by the fundamental
//!   spline inverse ω (ring deconvolution).
//! * [`cfft16`] / [`cfft16_f32`] — a radix-4 16-point kernel structured like
//!   the FPGA "CFFT16" unit of §IV.C (two radix-4 stages + digit reversal).
//!   The `f32` variant mirrors the FPGA's single-precision datapath.
//! * [`Fft3`] — a 3-D transform over an `(nx, ny, nz)` row-major box,
//!   applying 1-D transforms axis by axis through a scratch line — the
//!   software analogue of the FPGA's "orthogonal memory" axis rotation.
//!
//! Convention: `forward` computes `X_k = Σ_n x_n e^{-2πi kn/N}` (negative
//! exponent); `inverse` uses the positive exponent and scales by `1/N`, so
//! `inverse(forward(x)) == x`.

use crate::complex::{Complex32, Complex64};

/// A reusable radix-2 FFT plan of fixed power-of-two size.
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
    /// Twiddles `e^{-2πi k/n}` for `k < n/2`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
}

impl Fft {
    /// Create a plan for transforms of length `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "FFT size must be a power of two, got {n}"
        );
        let twiddles = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Self { n, twiddles, rev }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT (negative exponent), no scaling.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT (positive exponent), scaled by `1/n`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, true);
        let s = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(s);
        }
    }

    fn transform(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length must equal plan size");
        // Bit-reversal reordering.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative butterflies; twiddle stride halves as block length doubles.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }
}

/// Radix-4 16-point FFT in f64, structured like the FPGA CFFT16 unit:
/// two radix-4 stages with twiddle multiplication between them, then
/// base-4 digit reversal.
pub fn cfft16(data: &mut [Complex64; 16], inverse: bool) {
    let sign = if inverse { 1.0 } else { -1.0 };
    // Stage 1: 4 radix-4 butterflies on stride-4 groups.
    let mut stage = [Complex64::ZERO; 16];
    for g in 0..4 {
        let x0 = data[g];
        let x1 = data[g + 4];
        let x2 = data[g + 8];
        let x3 = data[g + 12];
        let (y0, y1, y2, y3) = radix4_butterfly(x0, x1, x2, x3, sign);
        // Twiddle: W16^{g·q} on output index q of group g.
        for (q, y) in [y0, y1, y2, y3].into_iter().enumerate() {
            let w = Complex64::cis(sign * 2.0 * std::f64::consts::PI * (g * q) as f64 / 16.0);
            stage[q * 4 + g] = y * w;
        }
    }
    // Stage 2: 4 radix-4 butterflies on contiguous groups.
    for g in 0..4 {
        let x0 = stage[g * 4];
        let x1 = stage[g * 4 + 1];
        let x2 = stage[g * 4 + 2];
        let x3 = stage[g * 4 + 3];
        let (y0, y1, y2, y3) = radix4_butterfly(x0, x1, x2, x3, sign);
        data[g * 4] = y0;
        data[g * 4 + 1] = y1;
        data[g * 4 + 2] = y2;
        data[g * 4 + 3] = y3;
    }
    // Base-4 digit reversal of the 2-digit index (swap digits).
    let mut out = [Complex64::ZERO; 16];
    for (i, item) in out.iter_mut().enumerate() {
        let hi = i / 4;
        let lo = i % 4;
        *item = data[lo * 4 + hi];
    }
    *data = out;
    if inverse {
        for z in data.iter_mut() {
            *z = z.scale(1.0 / 16.0);
        }
    }
}

#[inline]
fn radix4_butterfly(
    x0: Complex64,
    x1: Complex64,
    x2: Complex64,
    x3: Complex64,
    sign: f64,
) -> (Complex64, Complex64, Complex64, Complex64) {
    // DFT-4 with exponent sign: outputs y_q = Σ_p x_p e^{sign·2πi pq/4}.
    let a = x0 + x2;
    let b = x0 - x2;
    let c = x1 + x3;
    // sign −1 (forward): −i·(x1−x3); sign +1 (inverse): +i·(x1−x3).
    let d = (x1 - x3).mul_i().scale(sign);
    (a + c, b + d, a - c, b - d)
}

/// Single-precision CFFT16: the FPGA computes in native f32 DSPs; this
/// narrows, runs the same radix-4 structure, and keeps f32 throughout.
pub fn cfft16_f32(data: &mut [Complex32; 16], inverse: bool) {
    let sign: f32 = if inverse { 1.0 } else { -1.0 };
    let mut stage = [Complex32::ZERO; 16];
    for g in 0..4 {
        let x0 = data[g];
        let x1 = data[g + 4];
        let x2 = data[g + 8];
        let x3 = data[g + 12];
        let a = x0 + x2;
        let b = x0 - x2;
        let c = x1 + x3;
        let d = (x1 - x3).mul_i().scale(sign);
        let ys = [a + c, b + d, a - c, b - d];
        for (q, y) in ys.into_iter().enumerate() {
            let w = Complex32::cis(sign * 2.0 * std::f32::consts::PI * (g * q) as f32 / 16.0);
            stage[q * 4 + g] = y * w;
        }
    }
    for g in 0..4 {
        let x0 = stage[g * 4];
        let x1 = stage[g * 4 + 1];
        let x2 = stage[g * 4 + 2];
        let x3 = stage[g * 4 + 3];
        let a = x0 + x2;
        let b = x0 - x2;
        let c = x1 + x3;
        let d = (x1 - x3).mul_i().scale(sign);
        data[g * 4] = a + c;
        data[g * 4 + 1] = b + d;
        data[g * 4 + 2] = a - c;
        data[g * 4 + 3] = b - d;
    }
    let mut out = [Complex32::ZERO; 16];
    for (i, item) in out.iter_mut().enumerate() {
        *item = data[(i % 4) * 4 + i / 4];
    }
    *data = out;
    if inverse {
        for z in data.iter_mut() {
            *z = z.scale(1.0 / 16.0);
        }
    }
}

/// Real-input FFT of even length `n` via the packed half-size complex
/// transform: `forward_real` returns the `n/2 + 1` non-redundant spectrum
/// values (the rest follow from Hermitian symmetry), `inverse_real`
/// inverts it. This is the classic r2c trick: pack
/// `z_k = x_{2k} + i·x_{2k+1}`, transform at half size, then unravel even
/// and odd spectra with one twiddle pass — half the work of a full
/// complex FFT on real data (grid charges are real).
#[derive(Clone, Debug)]
pub struct RealFft {
    n: usize,
    half: Fft,
    /// `e^{−2πik/n}` for `k ≤ n/2`.
    twiddles: Vec<Complex64>,
}

impl RealFft {
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "real FFT size must be a power of two ≥ 2"
        );
        let twiddles = (0..=n / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Self {
            n,
            half: Fft::new(n / 2),
            twiddles,
        }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of spectrum values: `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Scratch length required by the `_with` transform variants: `n/2`.
    pub fn scratch_len(&self) -> usize {
        self.n / 2
    }

    /// Forward transform of `n` reals into `n/2 + 1` spectrum values
    /// (same convention as [`Fft::forward`]: negative exponent, unscaled).
    pub fn forward_real(&self, x: &[f64], out: &mut [Complex64]) {
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.forward_real_with(x, out, &mut scratch);
    }

    /// [`Self::forward_real`] using caller-provided scratch (at least
    /// [`Self::scratch_len`] values) — no heap allocation.
    pub fn forward_real_with(&self, x: &[f64], out: &mut [Complex64], scratch: &mut [Complex64]) {
        let n = self.n;
        let m = n / 2;
        assert_eq!(x.len(), n);
        assert_eq!(out.len(), m + 1);
        assert!(scratch.len() >= m, "real FFT scratch too short");
        // Pack and transform at half size.
        let z = &mut scratch[..m];
        for (k, zk) in z.iter_mut().enumerate() {
            *zk = Complex64::new(x[2 * k], x[2 * k + 1]);
        }
        self.half.forward(z);
        // Unravel: X_k = E_k + e^{−2πik/n} O_k with
        // E_k = (Z_k + Z̄_{m−k})/2, O_k = −i (Z_k − Z̄_{m−k})/2.
        for k in 0..=m {
            let zk = if k == m { z[0] } else { z[k] };
            let zmk = z[(m - k) % m].conj();
            let e = (zk + zmk).scale(0.5);
            let o = (zk - zmk).mul_i().scale(-0.5);
            out[k] = e + self.twiddles[k] * o;
        }
    }

    /// Inverse of [`Self::forward_real`]: `n/2 + 1` spectrum values back to
    /// `n` reals, scaled by `1/n` (so the pair round-trips).
    pub fn inverse_real(&self, spec: &[Complex64], out: &mut [f64]) {
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.inverse_real_with(spec, out, &mut scratch);
    }

    /// [`Self::inverse_real`] using caller-provided scratch (at least
    /// [`Self::scratch_len`] values) — no heap allocation.
    pub fn inverse_real_with(
        &self,
        spec: &[Complex64],
        out: &mut [f64],
        scratch: &mut [Complex64],
    ) {
        let n = self.n;
        let m = n / 2;
        assert_eq!(spec.len(), m + 1);
        assert_eq!(out.len(), n);
        assert!(scratch.len() >= m, "real FFT scratch too short");
        // Re-pack: Z_k = E_k + i·W̄_k O_k with E/O from the spectrum ends.
        let z = &mut scratch[..m];
        for (k, zk) in z.iter_mut().enumerate() {
            let xk = spec[k];
            let xmk = spec[m - k].conj();
            let e = (xk + xmk).scale(0.5);
            let o = ((xk - xmk).scale(0.5)) * self.twiddles[k].conj();
            *zk = e + o.mul_i();
        }
        self.half.inverse(z);
        for k in 0..m {
            out[2 * k] = z[k].re;
            out[2 * k + 1] = z[k].im;
        }
    }
}

/// 3-D FFT plan over an `(nx, ny, nz)` row-major complex box
/// (`index = (x·ny + y)·nz + z`).
#[derive(Clone, Debug)]
pub struct Fft3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    fx: Fft,
    fy: Fft,
    fz: Fft,
}

impl Fft3 {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            fx: Fft::new(nx),
            fy: Fft::new(ny),
            fz: Fft::new(nz),
        }
    }

    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scratch length required by the `_with` variants: the longest axis.
    pub fn scratch_len(&self) -> usize {
        self.nx.max(self.ny).max(self.nz)
    }

    pub fn forward(&self, data: &mut [Complex64]) {
        let mut line = vec![Complex64::ZERO; self.scratch_len()];
        self.transform(data, false, &mut line);
    }

    pub fn inverse(&self, data: &mut [Complex64]) {
        let mut line = vec![Complex64::ZERO; self.scratch_len()];
        self.transform(data, true, &mut line);
    }

    /// [`Self::forward`] using caller-provided scratch (at least
    /// [`Self::scratch_len`] values) — no heap allocation.
    pub fn forward_with(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        self.transform(data, false, scratch);
    }

    /// [`Self::inverse`] using caller-provided scratch (at least
    /// [`Self::scratch_len`] values) — no heap allocation.
    pub fn inverse_with(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        self.transform(data, true, scratch);
    }

    /// Apply 1-D transforms along z, then y, then x — the software analogue
    /// of the FPGA orthogonal-memory axis rotation (§IV.C).
    fn transform(&self, data: &mut [Complex64], inverse: bool, scratch: &mut [Complex64]) {
        assert_eq!(data.len(), self.len());
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        assert!(
            scratch.len() >= self.scratch_len(),
            "FFT3 scratch too short"
        );
        let line = &mut scratch[..nx.max(ny).max(nz)];
        // z lines are contiguous.
        for xy in 0..nx * ny {
            let s = xy * nz;
            let lane = &mut data[s..s + nz];
            if inverse {
                self.fz.inverse(lane);
            } else {
                self.fz.forward(lane);
            }
        }
        // y lines: stride nz.
        for x in 0..nx {
            for z in 0..nz {
                let base = x * ny * nz + z;
                for y in 0..ny {
                    line[y] = data[base + y * nz];
                }
                let lane = &mut line[..ny];
                if inverse {
                    self.fy.inverse(lane);
                } else {
                    self.fy.forward(lane);
                }
                for y in 0..ny {
                    data[base + y * nz] = line[y];
                }
            }
        }
        // x lines: stride ny*nz.
        for y in 0..ny {
            for z in 0..nz {
                let base = y * nz + z;
                for x in 0..nx {
                    line[x] = data[base + x * ny * nz];
                }
                let lane = &mut line[..nx];
                if inverse {
                    self.fx.inverse(lane);
                } else {
                    self.fx.forward(lane);
                }
                for x in 0..nx {
                    data[base + x * ny * nz] = line[x];
                }
            }
        }
    }
}

/// 3-D real-input FFT over an `(nx, ny, nz)` row-major real box: r2c
/// along z (the contiguous axis) to an `(nx, ny, nz/2+1)` half spectrum,
/// then complex transforms along y and x. Halves the work and memory of
/// [`Fft3`] on real grids (grid charges and potentials are real).
#[derive(Clone, Debug)]
pub struct RealFft3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    rz: RealFft,
    fy: Fft,
    fx: Fft,
}

impl RealFft3 {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            rz: RealFft::new(nz),
            fy: Fft::new(ny),
            fx: Fft::new(nx),
        }
    }

    /// Points in the half spectrum: `nx · ny · (nz/2 + 1)`.
    pub fn spectrum_len(&self) -> usize {
        self.nx * self.ny * (self.nz / 2 + 1)
    }

    /// Real box length.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scratch length required by the `_with` variants: one complex line of
    /// the longest transverse axis plus the r2c half-size scratch.
    pub fn scratch_len(&self) -> usize {
        self.nx.max(self.ny) + self.rz.scratch_len()
    }

    /// Forward: real `(nx, ny, nz)` → complex `(nx, ny, nz/2+1)`
    /// half spectrum (row-major, z fastest).
    pub fn forward(&self, data: &[f64], spec: &mut [Complex64]) {
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.forward_with(data, spec, &mut scratch);
    }

    /// [`Self::forward`] using caller-provided scratch (at least
    /// [`Self::scratch_len`] values) — no heap allocation.
    pub fn forward_with(&self, data: &[f64], spec: &mut [Complex64], scratch: &mut [Complex64]) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mz = nz / 2 + 1;
        assert_eq!(data.len(), nx * ny * nz);
        assert_eq!(spec.len(), nx * ny * mz);
        assert!(
            scratch.len() >= self.scratch_len(),
            "real FFT3 scratch too short"
        );
        let (line, rz_scratch) = scratch.split_at_mut(nx.max(ny));
        // z: r2c per contiguous line.
        for xy in 0..nx * ny {
            self.rz.forward_real_with(
                &data[xy * nz..(xy + 1) * nz],
                &mut spec[xy * mz..(xy + 1) * mz],
                rz_scratch,
            );
        }
        // y and x: complex transforms with strides over the half spectrum.
        for x in 0..nx {
            for z in 0..mz {
                let base = x * ny * mz + z;
                for y in 0..ny {
                    line[y] = spec[base + y * mz];
                }
                self.fy.forward(&mut line[..ny]);
                for y in 0..ny {
                    spec[base + y * mz] = line[y];
                }
            }
        }
        for y in 0..ny {
            for z in 0..mz {
                let base = y * mz + z;
                for x in 0..nx {
                    line[x] = spec[base + x * ny * mz];
                }
                self.fx.forward(&mut line[..nx]);
                for x in 0..nx {
                    spec[base + x * ny * mz] = line[x];
                }
            }
        }
    }

    /// Inverse of [`Self::forward`] (scaled so the pair round-trips).
    pub fn inverse(&self, spec: &mut [Complex64], data: &mut [f64]) {
        let mut scratch = vec![Complex64::ZERO; self.scratch_len()];
        self.inverse_with(spec, data, &mut scratch);
    }

    /// [`Self::inverse`] using caller-provided scratch (at least
    /// [`Self::scratch_len`] values) — no heap allocation.
    pub fn inverse_with(
        &self,
        spec: &mut [Complex64],
        data: &mut [f64],
        scratch: &mut [Complex64],
    ) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let mz = nz / 2 + 1;
        assert_eq!(data.len(), nx * ny * nz);
        assert_eq!(spec.len(), nx * ny * mz);
        assert!(
            scratch.len() >= self.scratch_len(),
            "real FFT3 scratch too short"
        );
        let (line, rz_scratch) = scratch.split_at_mut(nx.max(ny));
        for y in 0..ny {
            for z in 0..mz {
                let base = y * mz + z;
                for x in 0..nx {
                    line[x] = spec[base + x * ny * mz];
                }
                self.fx.inverse(&mut line[..nx]);
                for x in 0..nx {
                    spec[base + x * ny * mz] = line[x];
                }
            }
        }
        for x in 0..nx {
            for z in 0..mz {
                let base = x * ny * mz + z;
                for y in 0..ny {
                    line[y] = spec[base + y * mz];
                }
                self.fy.inverse(&mut line[..ny]);
                for y in 0..ny {
                    spec[base + y * mz] = line[y];
                }
            }
        }
        for xy in 0..nx * ny {
            self.rz.inverse_real_with(
                &spec[xy * mz..(xy + 1) * mz],
                &mut data[xy * nz..(xy + 1) * nz],
                rz_scratch,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex64], inverse: bool) -> Vec<Complex64> {
        let n = x.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = vec![Complex64::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, &v) in x.iter().enumerate() {
                let w =
                    Complex64::cis(sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
                *o += v * w;
            }
            if inverse {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin() + 0.1, (i as f64 * 1.1).cos() * 0.5))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let x = test_signal(n);
            let mut y = x.clone();
            Fft::new(n).forward(&mut y);
            let want = naive_dft(&x, false);
            for (a, b) in y.iter().zip(&want) {
                assert!((*a - *b).abs() < 1e-10 * n as f64, "n={n}");
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 16, 256, 1024] {
            let plan = Fft::new(n);
            let x = test_signal(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for (a, b) in y.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let x = test_signal(n);
        let mut y = x.clone();
        Fft::new(n).forward(&mut y);
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() < 1e-10);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 32;
        let mut x = vec![Complex64::ZERO; n];
        x[0] = Complex64::ONE;
        Fft::new(n).forward(&mut x);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-13);
        }
    }

    #[test]
    fn cfft16_matches_radix2_plan() {
        let x = test_signal(16);
        let mut a: [Complex64; 16] = x.clone().try_into().unwrap();
        cfft16(&mut a, false);
        let mut b = x.clone();
        Fft::new(16).forward(&mut b);
        for (p, q) in a.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-12);
        }
        // Round trip.
        cfft16(&mut a, true);
        for (p, q) in a.iter().zip(&x) {
            assert!((*p - *q).abs() < 1e-13);
        }
    }

    #[test]
    fn cfft16_f32_tracks_f64_within_single_precision() {
        let x = test_signal(16);
        let mut a: [Complex64; 16] = x.clone().try_into().unwrap();
        cfft16(&mut a, false);
        let mut s: [Complex32; 16] = core::array::from_fn(|i| x[i].to_c32());
        cfft16_f32(&mut s, false);
        let scale: f32 = x.iter().map(|z| z.abs() as f32).sum();
        for (p, q) in s.iter().zip(&a) {
            assert!((p.to_c64() - *q).abs() < (2e-6 * scale) as f64);
        }
    }

    #[test]
    fn fft3_roundtrip_and_impulse() {
        let (nx, ny, nz) = (4, 8, 16);
        let plan = Fft3::new(nx, ny, nz);
        let x: Vec<Complex64> = (0..plan.len())
            .map(|i| Complex64::new((i as f64 * 0.173).sin(), (i as f64 * 0.071).cos()))
            .collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
        // Impulse at origin → flat spectrum.
        let mut imp = vec![Complex64::ZERO; plan.len()];
        imp[0] = Complex64::ONE;
        plan.forward(&mut imp);
        for z in &imp {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft3_matches_separable_naive_on_plane_wave() {
        // A pure plane wave e^{−2πi(k·n/N)} transforms to a single spike.
        let (nx, ny, nz) = (8, 8, 8);
        let plan = Fft3::new(nx, ny, nz);
        let (kx, ky, kz) = (3usize, 5, 1);
        let mut x = vec![Complex64::ZERO; plan.len()];
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let ph = 2.0 * std::f64::consts::PI * (kx * ix) as f64 / nx as f64
                        + 2.0 * std::f64::consts::PI * (ky * iy) as f64 / ny as f64
                        + 2.0 * std::f64::consts::PI * (kz * iz) as f64 / nz as f64;
                    x[(ix * ny + iy) * nz + iz] = Complex64::cis(ph);
                }
            }
        }
        plan.forward(&mut x);
        let total = (nx * ny * nz) as f64;
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let v = x[(ix * ny + iy) * nz + iz];
                    if (ix, iy, iz) == (kx, ky, kz) {
                        assert!((v - Complex64::new(total, 0.0)).abs() < 1e-9);
                    } else {
                        assert!(v.abs() < 1e-9, "leak at {ix},{iy},{iz}: {v:?}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(12);
    }

    #[test]
    fn real_fft_matches_complex_spectrum() {
        for n in [2usize, 4, 8, 16, 32, 128] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.2).collect();
            let plan = RealFft::new(n);
            let mut spec = vec![Complex64::ZERO; n / 2 + 1];
            plan.forward_real(&x, &mut spec);
            // Reference: full complex FFT of the same reals.
            let mut full: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
            Fft::new(n).forward(&mut full);
            for k in 0..=n / 2 {
                assert!((spec[k] - full[k]).abs() < 1e-11 * n as f64, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn real_fft_roundtrip() {
        for n in [2usize, 8, 16, 32, 64, 512] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 37 % 19) as f64 - 9.0) * 0.3).collect();
            let plan = RealFft::new(n);
            let mut spec = vec![Complex64::ZERO; n / 2 + 1];
            plan.forward_real(&x, &mut spec);
            let mut back = vec![0.0; n];
            plan.inverse_real(&spec, &mut back);
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn real_fft3_matches_complex_fft3() {
        let (nx, ny, nz) = (4usize, 8, 16);
        let x: Vec<f64> = (0..nx * ny * nz).map(|i| (i as f64 * 0.13).cos()).collect();
        let rplan = RealFft3::new(nx, ny, nz);
        let mut spec = vec![Complex64::ZERO; rplan.spectrum_len()];
        rplan.forward(&x, &mut spec);
        let mut full: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        Fft3::new(nx, ny, nz).forward(&mut full);
        let mz = nz / 2 + 1;
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..mz {
                    let got = spec[(ix * ny + iy) * mz + iz];
                    let want = full[(ix * ny + iy) * nz + iz];
                    assert!((got - want).abs() < 1e-9, "at {ix},{iy},{iz}");
                }
            }
        }
    }

    /// The real-input path must agree with the full complex transform and
    /// invert exactly on random grids at the cubic sizes the top-level
    /// solver actually plans (8³, 16³, 32³).
    #[test]
    fn real_fft3_random_grids_toplevel_sizes() {
        for n in [8usize, 16, 32] {
            let len = n * n * n;
            let mut state = 1442695040888963407u64 ^ n as u64;
            let x: Vec<f64> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
                })
                .collect();
            let rplan = RealFft3::new(n, n, n);
            let mut spec = vec![Complex64::ZERO; rplan.spectrum_len()];
            rplan.forward(&x, &mut spec);
            // Half-spectrum matches the full complex transform.
            let mut full: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
            Fft3::new(n, n, n).forward(&mut full);
            let mz = n / 2 + 1;
            let tol = 1e-9 * (len as f64).sqrt();
            for ix in 0..n {
                for iy in 0..n {
                    for iz in 0..mz {
                        let got = spec[(ix * n + iy) * mz + iz];
                        let want = full[(ix * n + iy) * n + iz];
                        assert!((got - want).abs() < tol, "n={n} at {ix},{iy},{iz}");
                    }
                }
            }
            // Round trip restores the input.
            let mut back = vec![0.0; len];
            rplan.inverse(&mut spec, &mut back);
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn real_fft3_roundtrip() {
        let (nx, ny, nz) = (8usize, 4, 8);
        let x: Vec<f64> = (0..nx * ny * nz)
            .map(|i| ((i * 7 % 23) as f64 - 11.0) * 0.17)
            .collect();
        let plan = RealFft3::new(nx, ny, nz);
        let mut spec = vec![Complex64::ZERO; plan.spectrum_len()];
        plan.forward(&x, &mut spec);
        let mut back = vec![0.0; x.len()];
        plan.inverse(&mut spec, &mut back);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-11);
        }
    }
}
