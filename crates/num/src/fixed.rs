//! Q-format fixed-point arithmetic mirroring the MDGRAPE-4A datapaths.
//!
//! The hardware computes the long-range part almost entirely in fixed point
//! (§IV of the paper):
//!
//! * the LRU evaluates B-spline piecewise polynomials "in a fixed-point
//!   format with a 24-bit fractional part",
//! * grid charges/potentials travel as 32-bit fixed point with "an arbitrary
//!   binary point \[that\] can be shifted by a specified amount in the
//!   convolution to avoid overflow",
//! * convolution factors (the 1-D grid kernels) are 24-bit fixed point,
//! * force accumulation is 32-bit fixed point, total potential 64-bit.
//!
//! [`Fix32`] is a signed 32-bit value with a const-generic number of
//! fraction bits; multiplication widens to 64 bits and rounds to nearest.
//! [`Accum64`] is the 64-bit accumulator used by the global-memory
//! accumulate-on-write mode (sums of distributed partial forces/charges are
//! order-independent in integer arithmetic — the property the GM special
//! write mode exists to provide).

/// Signed 32-bit fixed point with `FRAC` fraction bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Fix32<const FRAC: u32>(pub i32);

impl<const FRAC: u32> Fix32<FRAC> {
    pub const SCALE: f64 = (1u64 << FRAC) as f64;
    /// Smallest representable increment.
    pub const EPSILON: f64 = 1.0 / Self::SCALE;
    pub const MAX: Self = Self(i32::MAX);
    pub const MIN: Self = Self(i32::MIN);
    pub const ZERO: Self = Self(0);

    /// Convert from f64, rounding to nearest and saturating at the rails
    /// (hardware clamps rather than wraps on the datapath inputs).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        let v = (x * Self::SCALE).round();
        if v >= i32::MAX as f64 {
            Self::MAX
        } else if v <= i32::MIN as f64 {
            Self::MIN
        } else {
            Self(v as i32)
        }
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE
    }

    /// Saturating addition (grid accumulation clamps on overflow).
    #[inline]
    pub fn sat_add(self, o: Self) -> Self {
        Self(self.0.saturating_add(o.0))
    }

    /// Wrapping addition (the raw GM accumulate-on-write behaviour).
    #[inline]
    pub fn wrapping_add(self, o: Self) -> Self {
        Self(self.0.wrapping_add(o.0))
    }

    /// Fixed-point multiply: widen to i64, round to nearest, saturate.
    /// (Named `fx_mul` to avoid shadowing `std::ops::Mul::mul`.)
    #[inline]
    pub fn fx_mul(self, o: Self) -> Self {
        let wide = self.0 as i64 * o.0 as i64;
        let rounded = round_shift(wide, FRAC);
        Self(clamp_i32(rounded))
    }

    /// Multiply with a different-format operand, producing `Fix32<OUT>`:
    /// the product has `FRAC + F2` fraction bits, shifted to `OUT`.
    /// This is how the GCU multiplies 32-bit grid data (tunable binary
    /// point) by 24-bit kernel factors.
    #[inline]
    pub fn mul_mixed<const F2: u32, const OUT: u32>(self, o: Fix32<F2>) -> Fix32<OUT> {
        let wide = self.0 as i64 * o.0 as i64;
        let shift = (FRAC + F2) as i64 - OUT as i64;
        let v = if shift >= 0 {
            round_shift(wide, shift as u32)
        } else {
            // Left shift can overflow i64 for large magnitudes; widen to
            // i128 so the saturation below sees the true value.
            let wide128 = (wide as i128) << (-shift) as u32;
            wide128.clamp(i64::MIN as i128, i64::MAX as i128) as i64
        };
        Fix32(clamp_i32(v))
    }
}

#[inline]
fn round_shift(v: i64, shift: u32) -> i64 {
    if shift == 0 {
        return v;
    }
    // Round to nearest, ties away from zero, preserving sign symmetry.
    let half = 1i64 << (shift - 1);
    if v >= 0 {
        (v + half) >> shift
    } else {
        -((-v + half) >> shift)
    }
}

#[inline]
fn clamp_i32(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// The LRU polynomial datapath format: 24-bit fraction
/// ("maximum of 1 − 2⁻²⁴" for the spline values, §IV.A).
pub type LruFix = Fix32<24>;

/// 64-bit fixed-point accumulator with `FRAC` fraction bits — the total
/// potential accumulates "at a 64-bit fixed point".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Accum64<const FRAC: u32>(pub i64);

impl<const FRAC: u32> Accum64<FRAC> {
    pub const SCALE: f64 = (1u128 << FRAC) as f64;
    pub const ZERO: Self = Self(0);

    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self(crate::cast::round_i64(x * Self::SCALE))
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE
    }

    /// Accumulate a 32-bit value of the same binary point.
    #[inline]
    pub fn add32(&mut self, v: Fix32<FRAC>) {
        self.0 = self.0.wrapping_add(v.0 as i64);
    }

    #[inline]
    pub fn add(&mut self, o: Self) {
        self.0 = self.0.wrapping_add(o.0);
    }
}

/// Quantise an `f64` slice through a `Fix32<FRAC>` round trip — used to
/// emulate what the hardware grid memories do to grid charges/potentials.
pub fn quantize_slice<const FRAC: u32>(data: &mut [f64]) {
    for x in data.iter_mut() {
        *x = Fix32::<FRAC>::from_f64(*x).to_f64();
    }
}

/// Choose a binary point (fraction bit count) so `max_abs` fits a signed
/// 32-bit value with one guard bit of headroom — the "shifted by a
/// specified amount ... to avoid overflow" logic of the GCU.
pub fn binary_point_for(max_abs: f64) -> u32 {
    let mut frac = 30u32;
    while frac > 0 {
        // Representable magnitude is 2^(31−frac); demanding max_abs below
        // 2^(30−frac) leaves a genuine guard bit for accumulation.
        let with_guard = (1i64 << (30 - frac)) as f64;
        if max_abs < with_guard {
            return frac;
        }
        frac -= 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_representable_values() {
        for i in -1000..1000 {
            let x = i as f64 / 256.0;
            let f = Fix32::<24>::from_f64(x);
            assert_eq!(f.to_f64(), x);
        }
    }

    #[test]
    fn quantisation_error_bounded_by_half_ulp() {
        for i in 0..10_000 {
            let x = (i as f64 * 0.001).sin() * 3.0;
            let f = Fix32::<24>::from_f64(x);
            assert!((f.to_f64() - x).abs() <= 0.5 * Fix32::<24>::EPSILON + 1e-18);
        }
    }

    #[test]
    fn saturates_at_rails() {
        let big = Fix32::<24>::from_f64(1e9);
        assert_eq!(big, Fix32::<24>::MAX);
        let small = Fix32::<24>::from_f64(-1e9);
        assert_eq!(small, Fix32::<24>::MIN);
        let s = Fix32::<24>::MAX.sat_add(Fix32::<24>::MAX);
        assert_eq!(s, Fix32::<24>::MAX);
    }

    #[test]
    fn multiplication_rounds_to_nearest() {
        let a = Fix32::<24>::from_f64(0.5);
        let b = Fix32::<24>::from_f64(0.25);
        assert!((a.fx_mul(b).to_f64() - 0.125).abs() < Fix32::<24>::EPSILON);
        // Sign symmetry of rounding.
        let c = Fix32::<24>::from_f64(-0.3);
        let d = Fix32::<24>::from_f64(0.7);
        let p = c.fx_mul(d).to_f64();
        let q = d.fx_mul(c).to_f64();
        assert_eq!(p, q);
        assert!((p + 0.21).abs() < 2.0 * Fix32::<24>::EPSILON);
    }

    #[test]
    fn mixed_format_multiply_matches_f64() {
        // 32-bit grid value (frac 20) × 24-bit kernel factor (frac 24) → frac 20.
        let g = Fix32::<20>::from_f64(123.456);
        let k = Fix32::<24>::from_f64(0.001234);
        let r: Fix32<20> = g.mul_mixed::<24, 20>(k);
        let want = 123.456 * 0.001234;
        assert!((r.to_f64() - want).abs() < 4.0 * Fix32::<20>::EPSILON);
    }

    #[test]
    fn integer_accumulation_is_order_independent() {
        // The GM accumulate-on-write exists so distributed sums need no lock
        // and no ordering; integer adds commute exactly.
        let xs: Vec<Fix32<20>> = (0..1000)
            .map(|i| Fix32::<20>::from_f64(((i * 37 % 100) as f64 - 50.0) * 0.01))
            .collect();
        let mut fwd = Accum64::<20>::ZERO;
        for &x in &xs {
            fwd.add32(x);
        }
        let mut rev = Accum64::<20>::ZERO;
        for &x in xs.iter().rev() {
            rev.add32(x);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn binary_point_gives_headroom() {
        for &m in &[0.1, 1.0, 10.0, 1000.0, 1e6, 1e8] {
            let frac = binary_point_for(m);
            if frac > 0 {
                // A genuine guard bit: twice the value still representable.
                let max_repr = (1i64 << (31 - frac)) as f64;
                assert!(2.0 * m <= max_repr, "m={m} frac={frac}");
                // And it is the largest such frac (tightest quantisation).
                if frac < 30 {
                    let tighter = (1i64 << (30 - frac - 1)) as f64;
                    assert!(m >= tighter, "m={m} frac={frac}");
                }
            }
        }
    }

    #[test]
    fn quantize_slice_is_idempotent() {
        let mut a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin()).collect();
        quantize_slice::<24>(&mut a);
        let b = a.clone();
        quantize_slice::<24>(&mut a);
        assert_eq!(a, b);
    }
}
