//! SoA cell-list short-range path vs the O(N²) pairwise oracle
//! (DESIGN.md §15): the production layout in `mesh::cells` must reproduce
//! `mesh::pairwise` — same kernel table, different traversal — on random
//! boxes, on cutoffs pushed against the half-box limit, and on atoms
//! placed exactly on cell boundaries, and must stay bitwise identical
//! across thread counts.

use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::mesh::cells::{short_range_cells_into, CellScratch};
use mdgrape4a_tme::mesh::model::{CoulombResult, CoulombSystem};
use mdgrape4a_tme::mesh::pairwise::{short_range_into, short_range_table_into, PairwiseScratch};
use mdgrape4a_tme::num::pool::Pool;
use mdgrape4a_tme::num::rng::SplitMix64;
use mdgrape4a_tme::num::table::PairKernelTable;
use mdgrape4a_tme::num::vec3::V3;

/// Cells vs the *table* oracle evaluate the identical kernel per pair, so
/// the only daylight is floating-point summation order: relative for the
/// scalars, absolute for per-atom values (same bar as the
/// `table_path_matches_exact_oracle` anchor in `crates/num`).
const REORDER_ENERGY_RTOL: f64 = 1e-10;
const REORDER_FORCE_ATOL: f64 = 1e-9;

/// Cells vs the *exact*-`erfc` oracle additionally sees the table's
/// segmented-polynomial approximation error (~1e-9 relative by design).
const TABLE_ENERGY_RTOL: f64 = 1e-8;
const TABLE_FORCE_ATOL: f64 = 1e-6;

fn random_system(n: usize, box_l: V3, seed: u64) -> CoulombSystem {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let pos = (0..n)
        .map(|_| {
            [
                rng.gen_range(0.0..box_l[0]),
                rng.gen_range(0.0..box_l[1]),
                rng.gen_range(0.0..box_l[2]),
            ]
        })
        .collect();
    let q = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    CoulombSystem::new(pos, q, box_l)
}

fn run_cells(
    sys: &CoulombSystem,
    table: &PairKernelTable,
    r_cut: f64,
    pool: &Pool,
) -> CoulombResult {
    let mut scratch = CellScratch::new();
    let mut out = CoulombResult::default();
    short_range_cells_into(sys, table, r_cut, pool, &mut scratch, &mut out);
    out
}

fn run_table_oracle(sys: &CoulombSystem, table: &PairKernelTable, r_cut: f64) -> CoulombResult {
    let pool = Pool::new(1);
    let mut scratch = PairwiseScratch::new();
    let mut out = CoulombResult::default();
    short_range_table_into(sys, table, r_cut, &pool, &mut scratch, &mut out);
    out
}

fn assert_close(got: &CoulombResult, want: &CoulombResult, e_rtol: f64, f_atol: f64, what: &str) {
    let scale = want.energy.abs().max(1.0);
    assert!(
        (got.energy - want.energy).abs() < e_rtol * scale,
        "{what}: energy {} vs {}",
        got.energy,
        want.energy
    );
    let vscale = want.virial.abs().max(scale);
    assert!(
        (got.virial - want.virial).abs() < e_rtol * vscale,
        "{what}: virial {} vs {}",
        got.virial,
        want.virial
    );
    assert_eq!(got.forces.len(), want.forces.len());
    for (i, (a, b)) in got.forces.iter().zip(&want.forces).enumerate() {
        for c in 0..3 {
            assert!(
                (a[c] - b[c]).abs() < f_atol,
                "{what}: force[{i}][{c}] {} vs {}",
                a[c],
                b[c]
            );
        }
    }
    for (i, (a, b)) in got.potentials.iter().zip(&want.potentials).enumerate() {
        assert!((a - b).abs() < f_atol, "{what}: potential[{i}] {a} vs {b}");
    }
}

#[test]
fn cells_match_pairwise_oracle_on_random_boxes() {
    let pool = Pool::new(2);
    for (seed, box_l, r_cut) in [
        (11u64, [5.0, 5.0, 5.0], 1.1),
        (12, [6.0, 4.5, 5.2], 1.2),
        (13, [4.0, 7.0, 3.6], 0.9),
        // Cutoff exactly a third of the smallest edge: 3 cells on that
        // axis, the tightest geometry the cell path accepts.
        (14, [4.8, 6.0, 5.4], 1.6),
    ] {
        let sys = random_system(280, box_l, seed);
        let table = PairKernelTable::new(1.9, r_cut);
        let got = run_cells(&sys, &table, r_cut, &pool);
        let want = run_table_oracle(&sys, &table, r_cut);
        assert_close(
            &got,
            &want,
            REORDER_ENERGY_RTOL,
            REORDER_FORCE_ATOL,
            &format!("seed {seed}"),
        );
    }
}

#[test]
fn cells_match_oracle_with_cutoff_near_half_box() {
    // Cutoffs this large leave fewer than 3 cells per axis, driving the
    // SoA brute-force fallback — including r_cut at exactly the half-box
    // boundary the API admits.
    let pool = Pool::new(4);
    let box_l = [4.2, 4.0, 4.4];
    for (seed, r_cut) in [(21u64, 1.9), (22, 1.99), (23, 2.0)] {
        let sys = random_system(150, box_l, seed);
        let table = PairKernelTable::new(1.3, r_cut);
        let got = run_cells(&sys, &table, r_cut, &pool);
        let want = run_table_oracle(&sys, &table, r_cut);
        assert_close(
            &got,
            &want,
            REORDER_ENERGY_RTOL,
            REORDER_FORCE_ATOL,
            &format!("r_cut {r_cut}"),
        );
    }
}

#[test]
fn cells_match_oracle_with_atoms_on_cell_boundaries() {
    // Atoms sitting exactly on cell faces (coordinates that are exact
    // multiples of the cell side, including the box edge itself, which
    // wraps to 0) — the binning must stay a permutation and the pair sum
    // must not double- or zero-count any of them.
    let box_l = [4.0, 4.0, 4.0];
    let r_cut = 1.0; // 4 cells per axis, side exactly 1.0
    let mut pos: Vec<V3> = Vec::new();
    for ix in 0..4 {
        for iy in 0..4 {
            for iz in 0..4 {
                pos.push([f64::from(ix), f64::from(iy), f64::from(iz)]);
            }
        }
    }
    // Atoms at the box edge itself (coordinate L wraps to 0), offset on
    // the other axes so no two atoms coincide exactly.
    pos.push([4.0, 0.5, 0.5]);
    pos.push([0.5, 4.0, 1.5]);
    pos.push([1.5, 2.5, 4.0]);
    let q = (0..pos.len())
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let sys = CoulombSystem::new(pos, q, box_l);
    let table = PairKernelTable::new(1.9, r_cut);
    let pool = Pool::new(2);
    let got = run_cells(&sys, &table, r_cut, &pool);
    let want = run_table_oracle(&sys, &table, r_cut);
    assert_close(
        &got,
        &want,
        REORDER_ENERGY_RTOL,
        REORDER_FORCE_ATOL,
        "boundary lattice",
    );
}

#[test]
fn cells_match_exact_erfc_oracle_on_water() {
    // Against the exact-erfc O(N²) reference the remaining error is the
    // kernel table's approximation, not the traversal.
    let sys = water_box(64, 7).coulomb_system();
    let min_edge = sys.box_l.iter().copied().fold(f64::INFINITY, f64::min);
    let r_cut = 0.9f64.min(min_edge / 2.0);
    let alpha = 1.8;
    let table = PairKernelTable::new(alpha, r_cut);
    let pool = Pool::new(2);
    let got = run_cells(&sys, &table, r_cut, &pool);
    let mut want = CoulombResult::default();
    let mut scratch = PairwiseScratch::new();
    short_range_into(&sys, alpha, r_cut, &Pool::new(1), &mut scratch, &mut want);
    assert_close(&got, &want, TABLE_ENERGY_RTOL, TABLE_FORCE_ATOL, "water");
}

#[test]
fn cells_bitwise_identical_across_thread_counts_on_water() {
    let sys = water_box(128, 5).coulomb_system();
    let min_edge = sys.box_l.iter().copied().fold(f64::INFINITY, f64::min);
    let r_cut = 0.9f64.min(min_edge / 2.0);
    let table = PairKernelTable::new(1.8, r_cut);
    let base = run_cells(&sys, &table, r_cut, &Pool::new(1));
    for threads in [2usize, 4, 8] {
        let got = run_cells(&sys, &table, r_cut, &Pool::new(threads));
        assert_eq!(
            base.energy.to_bits(),
            got.energy.to_bits(),
            "threads {threads}"
        );
        assert_eq!(
            base.virial.to_bits(),
            got.virial.to_bits(),
            "threads {threads}"
        );
        for (a, b) in base.forces.iter().zip(&got.forces) {
            for c in 0..3 {
                assert_eq!(a[c].to_bits(), b[c].to_bits(), "threads {threads}");
            }
        }
        for (a, b) in base.potentials.iter().zip(&got.potentials) {
            assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}");
        }
    }
}
