//! Randomised property tests for the `tme-serve` wire protocol.
//!
//! Two contracts, checked over seeded fuzzed payloads (same
//! deterministic `SplitMix64` style as `property_invariants.rs` — every
//! failure reproduces from the printed case index):
//!
//! 1. **Round trip** — every `Request`/`Response` variant survives
//!    encode → decode bit-for-bit.
//! 2. **Robustness** — truncated or corrupted frames decode to a typed
//!    [`WireError`], never a panic, and never silently succeed on a
//!    short payload.

use mdgrape4a_tme::md::backend::{BackendKind, BackendParams, PswfParams, SlabParams, SpmeParams};
use mdgrape4a_tme::num::rng::SplitMix64;
use mdgrape4a_tme::reference::ewald::EwaldParams;
use mdgrape4a_tme::serve::protocol::{read_frame, write_frame, EstimateSpec};
use mdgrape4a_tme::serve::{Request, Response, ServerErrorCode, WireError};
use mdgrape4a_tme::tme::TmeParams;

const CASES: u64 = 96;

/// Run `body` for `CASES` independently seeded generators, printing the
/// failing case index before re-raising any panic.
fn for_cases(name: &str, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xD1CE_5EED ^ (case << 8) ^ case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{name}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

fn rand_string(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_index(max_len + 1);
    (0..len)
        .map(|_| {
            // Mixed ASCII and multi-byte to exercise the UTF-8 path.
            ['a', 'Q', '7', ' ', 'µ', '§', '\n', '"'][rng.gen_index(8)]
        })
        .collect()
}

fn rand_v3s(rng: &mut SplitMix64, max_len: usize) -> Vec<[f64; 3]> {
    let len = rng.gen_index(max_len + 1);
    (0..len)
        .map(|_| {
            [
                rng.gen_range(-1e3..1e3),
                rng.gen_range(-1e3..1e3),
                rng.gen_range(-1e3..1e3),
            ]
        })
        .collect()
}

fn rand_grid(rng: &mut SplitMix64) -> [usize; 3] {
    [
        1 << rng.gen_index(8),
        1 << rng.gen_index(8),
        1 << rng.gen_index(8),
    ]
}

/// Random parameters across every servable backend kind — the wire layer
/// must carry any field values, sensible or not (validation is the
/// server's job, not the codec's).
fn rand_backend_params(rng: &mut SplitMix64) -> BackendParams {
    let tme = TmeParams {
        n: rand_grid(rng),
        p: rng.gen_index(16),
        levels: rng.next_u64() as u32 & 0xF,
        gc: rng.gen_index(32),
        m_gaussians: rng.gen_index(12),
        alpha: rng.gen_range(0.0..10.0),
        r_cut: rng.gen_range(0.0..5.0),
    };
    match rng.gen_index(6) {
        0 => BackendParams::Tme(tme),
        1 => BackendParams::Msm(tme),
        2 => BackendParams::Spme(SpmeParams {
            n: rand_grid(rng),
            p: rng.gen_index(16),
            alpha: rng.gen_range(0.0..10.0),
            r_cut: rng.gen_range(0.0..5.0),
        }),
        3 => BackendParams::SpmePswf(PswfParams {
            n: rand_grid(rng),
            p: rng.gen_index(16),
            alpha: rng.gen_range(0.0..10.0),
            r_cut: rng.gen_range(0.0..5.0),
            shape: rng.gen_range(0.0..40.0),
        }),
        4 => BackendParams::Ewald(EwaldParams {
            alpha: rng.gen_range(0.0..10.0),
            r_cut: rng.gen_range(0.0..5.0),
            n_cut: rng.gen_index(64) as i64,
        }),
        _ => BackendParams::Slab(SlabParams {
            n: rand_grid(rng),
            p: rng.gen_index(16),
            alpha: rng.gen_range(0.0..10.0),
            r_cut: rng.gen_range(0.0..5.0),
            gamma_top: rng.gen_range(-1.0..1.0),
            gamma_bot: rng.gen_range(-1.0..1.0),
            n_images: rng.gen_index(2) as u32,
        }),
    }
}

fn rand_backend_kind(rng: &mut SplitMix64) -> BackendKind {
    [
        BackendKind::Tme,
        BackendKind::Spme,
        BackendKind::SpmePswf,
        BackendKind::Ewald,
        BackendKind::Msm,
        BackendKind::Slab,
    ][rng.gen_index(6)]
}

/// Random *work* request (the kinds a router hop may wrap in a v4
/// forwarded frame).
fn rand_work_request(rng: &mut SplitMix64) -> Request {
    match rng.gen_index(3) {
        0 => {
            let params = rand_backend_params(rng);
            let pos = rand_v3s(rng, 32);
            // Deliberately independent of `pos` length: the codec must
            // carry mismatched arrays too (validation is the server's
            // job, not the wire's).
            let q = (0..rng.gen_index(33))
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect();
            Request::Compute {
                deadline_ms: rng.next_u64() >> 40,
                params,
                box_l: [
                    rng.gen_range(0.1..100.0),
                    rng.gen_range(0.1..100.0),
                    rng.gen_range(0.1..100.0),
                ],
                pos,
                q,
            }
        }
        1 => Request::NveRun {
            deadline_ms: rng.next_u64() >> 40,
            waters: rng.gen_index(1000) as u64,
            seed: rng.next_u64(),
            steps: rng.gen_index(10_000) as u64,
            dt: rng.gen_range(0.0..0.01),
            r_cut: rng.gen_range(0.1..2.0),
        },
        _ => Request::Estimate {
            deadline_ms: rng.next_u64() >> 40,
            spec: EstimateSpec {
                backend: rand_backend_kind(rng),
                n_atoms: rng.next_u64() >> 20,
                grid: 1 << rng.gen_index(10),
                levels: rng.next_u64() as u32 & 0xF,
                gc: rng.gen_index(32) as u64,
                m_gaussians: rng.gen_index(12) as u64,
                r_cut: rng.gen_range(0.0..5.0),
                box_l: [
                    rng.gen_range(0.1..100.0),
                    rng.gen_range(0.1..100.0),
                    rng.gen_range(0.1..100.0),
                ],
                steps: rng.gen_index(100_000) as u64,
            },
        },
    }
}

fn rand_request(rng: &mut SplitMix64) -> Request {
    match rng.gen_index(6) {
        0..=2 => rand_work_request(rng),
        3 => Request::Stats,
        4 => Request::Shutdown {
            drain: rng.gen_index(2) == 0,
        },
        // The protocol-v4 router-forwarded frame: any work request,
        // wrapped with a tenant id and the client's original deadline.
        _ => Request::Forwarded {
            tenant: rng.next_u64(),
            deadline_ms: rng.next_u64() >> 40,
            inner: Box::new(rand_work_request(rng)),
        },
    }
}

fn rand_response(rng: &mut SplitMix64) -> Response {
    match rng.gen_index(8) {
        0 => {
            let forces = rand_v3s(rng, 32);
            let potentials = (0..rng.gen_index(33))
                .map(|_| rng.gen_range(-1e2..1e2))
                .collect();
            Response::Computed {
                energy: rng.gen_range(-1e6..1e6),
                cache_hit: rng.gen_index(2) == 0,
                forces,
                potentials,
            }
        }
        1 => Response::NveDone {
            steps: rng.gen_index(10_000) as u64,
            first_total: rng.gen_range(-1e4..1e4),
            last_total: rng.gen_range(-1e4..1e4),
            drift: rng.gen_range(0.0..1.0),
            temperature: rng.gen_range(0.0..1e3),
        },
        2 => Response::Estimated {
            steps: rng.gen_index(100_000) as u64,
            mean_us: rng.gen_range(0.0..1e7),
            max_us: rng.gen_range(0.0..1e8),
            report: rand_string(rng, 64),
        },
        3 => Response::Stats {
            text: rand_string(rng, 128),
            json: rand_string(rng, 128),
        },
        4 => Response::ShuttingDown {
            drain: rng.gen_index(2) == 0,
        },
        5 => Response::Rejected {
            retry_after_ms: rng.gen_index(10_000) as u64,
            queue_depth: rng.gen_index(64) as u64,
            outstanding_cost: rng.next_u64() >> rng.gen_index(64),
            cost_budget: rng.next_u64() >> rng.gen_index(64),
        },
        6 => Response::Expired {
            waited_ms: rng.gen_index(100_000) as u64,
            deadline_ms: rng.gen_index(100_000) as u64,
        },
        _ => Response::ServerError {
            code: [
                ServerErrorCode::BadRequest,
                ServerErrorCode::SolverFault,
                ServerErrorCode::Internal,
            ][rng.gen_index(3)],
            message: rand_string(rng, 96),
        },
    }
}

#[test]
fn requests_round_trip_bitwise() {
    for_cases("requests_round_trip_bitwise", |rng| {
        let req = rand_request(rng);
        let bytes = req.encode();
        let back = Request::decode(&bytes).unwrap_or_else(|e| {
            panic!("round trip of {req:?} failed: {e}");
        });
        assert_eq!(req, back);
    });
}

#[test]
fn responses_round_trip_bitwise() {
    for_cases("responses_round_trip_bitwise", |rng| {
        let resp = rand_response(rng);
        let bytes = resp.encode();
        let back = Response::decode(&bytes).unwrap_or_else(|e| {
            panic!("round trip of {resp:?} failed: {e}");
        });
        assert_eq!(resp, back);
    });
}

/// Any strict prefix of a valid payload must decode to a typed error —
/// never a panic, never a silent success.
#[test]
fn truncated_payloads_are_typed_errors() {
    for_cases("truncated_payloads_are_typed_errors", |rng| {
        let bytes = rand_request(rng).encode();
        let cut = rng.gen_index(bytes.len().max(1));
        assert!(
            Request::decode(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            bytes.len()
        );
        let bytes = rand_response(rng).encode();
        let cut = rng.gen_index(bytes.len().max(1));
        assert!(
            Response::decode(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            bytes.len()
        );
    });
}

/// Flipping arbitrary bytes may or may not produce a decodable payload,
/// but it must never panic, and version/kind corruption must map to the
/// dedicated error variants.
#[test]
fn corrupted_payloads_never_panic() {
    for_cases("corrupted_payloads_never_panic", |rng| {
        let mut bytes = rand_request(rng).encode();
        let n_flips = 1 + rng.gen_index(4);
        for _ in 0..n_flips {
            let at = rng.gen_index(bytes.len());
            bytes[at] ^= 1 << rng.gen_index(8);
        }
        // Returning at all (Ok or Err) is the property under test; the
        // panic would propagate out of the closure and fail the case.
        match Request::decode(&bytes) {
            Ok(_) | Err(_) => {}
        }

        // Targeted corruption: the version byte and the kind byte have
        // dedicated typed errors.
        let good = rand_response(rng).encode();
        let mut bad_version = good.clone();
        bad_version[0] ^= 0xFF;
        assert!(matches!(
            Response::decode(&bad_version),
            Err(WireError::BadVersion { .. })
        ));
        let mut bad_kind = good;
        bad_kind[1] = 0xEE;
        assert!(matches!(
            Response::decode(&bad_kind),
            Err(WireError::UnknownResponseKind { got: 0xEE })
        ));
    });
}

/// The backend-selection wire field: corrupting the backend tag to any
/// value outside the servable set decodes to the typed, connection-fatal
/// [`WireError::UnknownBackendKind`] — never a panic, never a silent
/// fallback to some default backend.
#[test]
fn unknown_backend_tags_are_typed_errors() {
    // The tag sits after version(1) + kind(1) + deadline_ms(8) in both
    // Compute and Estimate payloads.
    const TAG_AT: usize = 10;
    for_cases("unknown_backend_tags_are_typed_errors", |rng| {
        let compute = Request::Compute {
            deadline_ms: rng.next_u64() >> 40,
            params: rand_backend_params(rng),
            box_l: [4.0; 3],
            pos: rand_v3s(rng, 8),
            q: vec![1.0],
        };
        let estimate = Request::Estimate {
            deadline_ms: rng.next_u64() >> 40,
            spec: EstimateSpec {
                backend: rand_backend_kind(rng),
                n_atoms: 100,
                grid: 16,
                levels: 1,
                gc: 8,
                m_gaussians: 4,
                r_cut: 1.0,
                box_l: [4.0; 3],
                steps: 5,
            },
        };
        for req in [compute, estimate] {
            let mut bytes = req.encode();
            // Draw a tag outside the servable 1..=6 range; 7 (the cutoff
            // model) is deliberately not servable either.
            let bad = loop {
                let t = rng.next_u64() as u8;
                if !(1..=6).contains(&t) {
                    break t;
                }
            };
            bytes[TAG_AT] = bad;
            assert_eq!(
                Request::decode(&bytes),
                Err(WireError::UnknownBackendKind { got: bad }),
                "tag {bad} in {req:?}"
            );
        }
    });
}

/// Trailing garbage after a well-formed payload is rejected: a frame is
/// exactly one message.
#[test]
fn trailing_garbage_is_rejected() {
    for_cases("trailing_garbage_is_rejected", |rng| {
        let mut bytes = rand_request(rng).encode();
        bytes.push(rng.next_u64() as u8);
        assert!(Request::decode(&bytes).is_err());
    });
}

/// The v4 forwarded frame only wraps plain work requests: control
/// frames and nested forwarding fail typed at decode (never a panic,
/// never unbounded recursion), for any tenant/deadline values.
#[test]
fn forwarded_wrappers_reject_non_work_inners() {
    for_cases("forwarded_wrappers_reject_non_work_inners", |rng| {
        // A forwarded work request round-trips...
        let good = Request::Forwarded {
            tenant: rng.next_u64(),
            deadline_ms: rng.next_u64() >> 40,
            inner: Box::new(rand_work_request(rng)),
        };
        assert_eq!(Request::decode(&good.encode()), Ok(good.clone()));
        // ...but control inners and router chains are refused with the
        // dedicated error carrying the offending inner kind byte.
        for inner in [
            Request::Stats,
            Request::Shutdown {
                drain: rng.gen_index(2) == 0,
            },
            good,
        ] {
            let bad = Request::Forwarded {
                tenant: rng.next_u64(),
                deadline_ms: rng.next_u64() >> 40,
                inner: Box::new(inner),
            };
            assert!(
                matches!(
                    Request::decode(&bad.encode()),
                    Err(WireError::ForwardedNotWork { .. })
                ),
                "accepted {bad:?}"
            );
        }
    });
}

/// Frame transport: length-prefixed round trip, EOF mid-frame is a typed
/// I/O error, and an oversized length prefix is rejected before any
/// allocation.
#[test]
fn frames_round_trip_and_reject_truncation() {
    for_cases("frames_round_trip_and_reject_truncation", |rng| {
        let payload = rand_request(rng).encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap_or_else(|e| panic!("write_frame failed: {e}"));
        let mut cursor = buf.as_slice();
        let back = read_frame(&mut cursor).unwrap_or_else(|e| panic!("read_frame failed: {e}"));
        assert_eq!(payload, back);

        let cut = rng.gen_index(buf.len().max(1));
        let mut short = &buf[..cut];
        assert!(matches!(read_frame(&mut short), Err(WireError::Io { .. })));
    });
}
