//! Fig.-4-style NVE integration tests: energy conservation and the
//! TME-vs-SPME total-energy offset structure on rigid TIP3P water.

use mdgrape4a_tme::md::backend::{
    plan_backend, BackendParams, LongRangeBackend, SpmeBackend, SpmeParams, TmeBackend,
};
use mdgrape4a_tme::md::nve::{energy_drift, NveSim};
use mdgrape4a_tme::md::water::{relax, thermalize, water_box};
use mdgrape4a_tme::reference::ewald::EwaldParams;
use mdgrape4a_tme::tme::TmeParams;

fn build_system() -> mdgrape4a_tme::md::MdSystem {
    let mut s = water_box(125, 8);
    relax(&mut s, 150, 0.8);
    thermalize(&mut s, 300.0, 9);
    s
}

fn run(solver: &dyn LongRangeBackend, steps: usize) -> Vec<mdgrape4a_tme::md::EnergyRecord> {
    let sys = build_system();
    let mut sim = NveSim::new(sys, solver, 0.001, 0.75);
    sim.run(steps, 10)
}

/// The 125-water test box is tiny (L ≈ 1.56 nm → h ≈ 0.1 nm), far below
/// the paper's h ≈ 0.31 nm, so the grid cutoff must be larger than the
/// hardware's g_c = 8 to keep the slowest shell Gaussian inside it.
fn tme_params(m: usize, alpha: f64, r_cut: f64) -> TmeParams {
    TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 16,
        m_gaussians: m,
        alpha,
        r_cut,
    }
}

#[test]
fn spme_and_tme_both_conserve_energy() {
    let box_l = build_system().box_l;
    let r_cut = 0.75;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let spme = SpmeBackend::new(
        SpmeParams {
            n: [16; 3],
            p: 6,
            alpha,
            r_cut,
        },
        box_l,
    )
    .unwrap();
    let tme = TmeBackend::new(tme_params(3, alpha, r_cut), box_l).unwrap();
    for (name, solver) in [("SPME", &spme as &dyn LongRangeBackend), ("TME", &tme)] {
        let records = run(solver, 150);
        let drift = energy_drift(&records);
        let kinetic = records[0].kinetic.abs().max(1.0);
        // Drift per ps must be a tiny fraction of the kinetic energy.
        assert!(
            (drift * 0.15).abs() < 0.02 * kinetic,
            "{name}: drift {drift} kJ/mol/ps vs kinetic {kinetic}"
        );
    }
}

#[test]
fn tme_total_energy_offset_shrinks_with_m() {
    // Fig. 4: TME(M=1) underestimates the total energy relative to SPME;
    // the offset improves for M = 2, 3. Offsets are already visible at
    // t = 0 (they are potential-energy biases of the M-Gaussian fit).
    let box_l = build_system().box_l;
    let r_cut = 0.75;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let spme = SpmeBackend::new(
        SpmeParams {
            n: [16; 3],
            p: 6,
            alpha,
            r_cut,
        },
        box_l,
    )
    .unwrap();
    let e_spme = {
        let sys = build_system();
        NveSim::new(sys, &spme, 0.001, r_cut).energy_record().total
    };
    let mut offsets = Vec::new();
    for m in [1usize, 2, 3] {
        let tme = plan_backend(&BackendParams::Tme(tme_params(m, alpha, r_cut)), box_l).unwrap();
        let sys = build_system();
        let e = NveSim::new(sys, tme.as_ref(), 0.001, r_cut)
            .energy_record()
            .total;
        offsets.push((e - e_spme).abs());
    }
    // M = 1 visibly offset; M = 2, 3 close to SPME (near convergence the
    // ordering of M = 2 vs 3 can fluctuate within noise).
    assert!(
        offsets[1] < 0.5 * offsets[0] && offsets[2] < 0.5 * offsets[0],
        "offsets did not shrink with M: {offsets:?}"
    );
}

#[test]
fn temperature_stays_physical() {
    let box_l = build_system().box_l;
    let r_cut = 0.75;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let tme = TmeBackend::new(tme_params(3, alpha, r_cut), box_l).unwrap();
    let records = run(&tme, 100);
    for r in &records {
        assert!(
            r.temperature > 100.0 && r.temperature < 700.0,
            "T = {} K",
            r.temperature
        );
    }
}
