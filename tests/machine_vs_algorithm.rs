//! Consistency between the machine simulator's workload accounting and
//! the actual algorithm implementation: the simulated GCU does exactly
//! the work the real separable convolution performs.

use mdgrape4a_tme::machine::{simulate_step, MachineConfig, StepWorkload};
use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::reference::msm::separable_op_count;
use mdgrape4a_tme::tme::{Tme, TmeParams};

/// The algorithm's measured multiply-add count equals the §III.C formula
/// the simulator's GCU model is built on.
#[test]
fn algorithm_stats_match_cost_formula() {
    let sys = water_box(343, 3).coulomb_system();
    // g_c = 6 keeps 2g_c+1 = 13 taps under the 16-point axes (no folding),
    // matching the §III.C formula's assumption.
    let params = TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 6,
        m_gaussians: 4,
        alpha: 2.75,
        r_cut: 1.0,
    };
    let tme = Tme::new(params, sys.box_l);
    let (_, stats) = tme.long_range(&sys);
    let formula = separable_op_count(16 * 16 * 16, 6, 4);
    assert_eq!(stats.convolution.madds, formula);
    assert_eq!(stats.convolution.passes, 3 * 4);
}

/// L = 2 stats: level grids halve, op counts follow.
#[test]
fn two_level_stats_sum_over_levels() {
    let sys = water_box(1000, 5).coulomb_system();
    let params = TmeParams {
        n: [32; 3],
        p: 6,
        levels: 2,
        gc: 6,
        m_gaussians: 4,
        alpha: 2.75,
        r_cut: 1.0,
    };
    let tme = Tme::new(params, sys.box_l);
    let (_, stats) = tme.long_range(&sys);
    let want = separable_op_count(32 * 32 * 32, 6, 4) + separable_op_count(16 * 16 * 16, 6, 4);
    assert_eq!(stats.convolution.madds, want);
    assert_eq!(stats.top_points, 8 * 8 * 8);
}

/// The simulated machine distributes exactly the algorithm's grid over
/// its torus: per-node block count × nodes × block volume = grid points.
#[test]
fn simulator_grid_decomposition_is_exact() {
    let cfg = MachineConfig::mdgrape4a();
    for w in [StepWorkload::paper_fig9(), StepWorkload::paper_grid64()] {
        let blocks = w.gcu_blocks_per_node(cfg.torus);
        let total_points = blocks * 64 * cfg.node_count();
        assert_eq!(total_points, w.grid * w.grid * w.grid, "grid {}", w.grid);
    }
}

/// The simulated top level is the same 16³ FFT problem the algorithm
/// produces after L restrictions.
#[test]
fn simulator_top_level_matches_algorithm() {
    let w = StepWorkload::paper_fig9();
    let top = w.grid >> w.levels;
    assert_eq!(top, 16);
    // And the algorithm's top grid for the same configuration:
    let sys = water_box(1000, 7).coulomb_system();
    let params = TmeParams {
        n: [32; 3],
        p: 6,
        levels: 1,
        gc: 8,
        m_gaussians: 4,
        alpha: 2.75,
        r_cut: 1.0,
    };
    let (_, stats) = Tme::new(params, sys.box_l).long_range(&sys);
    assert_eq!(stats.top_points, (top * top * top) as u64);
}

/// End-to-end sanity of the headline claims through the facade:
/// ~206 µs step, ~5% long-range overhead, 16³ top level in < 20 µs.
#[test]
fn headline_numbers_hold() {
    let cfg = MachineConfig::mdgrape4a();
    let with = simulate_step(&cfg, &StepWorkload::paper_fig9());
    let mut w = StepWorkload::paper_fig9();
    w.long_range = false;
    let without = simulate_step(&cfg, &w);
    assert!((with.total_us - 206.0).abs() < 15.0);
    assert!((without.total_us - 196.0).abs() < 15.0);
    let overhead = (with.total_us - without.total_us) / without.total_us;
    assert!(overhead > 0.02 && overhead < 0.09);
    assert!(with.phase("TMENW round trip").unwrap() < 20.0);
}
