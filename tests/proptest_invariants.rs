//! Property-based tests (proptest) on the core data structures and
//! mathematical invariants of the TME stack.

use proptest::prelude::*;
use mdgrape4a_tme::mesh::bspline::BSpline;
use mdgrape4a_tme::mesh::{Grid3, SplineOps};
use mdgrape4a_tme::num::fft::Fft;
use mdgrape4a_tme::num::fixed::Fix32;
use mdgrape4a_tme::num::special::{erf, erfc};
use mdgrape4a_tme::num::vec3;
use mdgrape4a_tme::num::Complex64;
use mdgrape4a_tme::num::quadrature::GaussLegendre;
use mdgrape4a_tme::tme::convolve::{convolve_axis, convolve_axis_naive};
use mdgrape4a_tme::tme::kernel::Kernel1D;
use mdgrape4a_tme::tme::levels::LevelTransfer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// erf/erfc complement and range for arbitrary finite inputs.
    #[test]
    fn erf_complement_and_bounds(x in -30.0f64..30.0) {
        let e = erf(x);
        let c = erfc(x);
        prop_assert!((-1.0..=1.0).contains(&e));
        prop_assert!((0.0..=2.0).contains(&c));
        prop_assert!((e + c - 1.0).abs() < 1e-14);
    }

    /// FFT round trip restores arbitrary signals.
    #[test]
    fn fft_roundtrip(seed in 0u64..1000, log_n in 1u32..8) {
        let n = 1usize << log_n;
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let x: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let plan = Fft::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-11);
        }
    }

    /// B-spline partition of unity at arbitrary particle positions.
    #[test]
    fn spline_partition_of_unity(u in -100.0f64..100.0, p_idx in 0usize..3) {
        let p = [4usize, 6, 8][p_idx];
        let (_, w, dw) = BSpline::new(p).weights(u);
        let s: f64 = w.iter().sum();
        let ds: f64 = dw.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-12);
        prop_assert!(ds.abs() < 1e-12);
    }

    /// Charge assignment conserves total charge for arbitrary charges and
    /// positions (inside or outside the box).
    #[test]
    fn assignment_conserves_charge(
        xs in prop::collection::vec(-10.0f64..10.0, 3..30),
        qs in prop::collection::vec(-2.0f64..2.0, 3..30),
    ) {
        let n = xs.len().min(qs.len()) / 3 * 3;
        if n == 0 { return Ok(()); }
        let pos: Vec<[f64; 3]> = xs[..n].chunks(3).map(|c| [c[0], c[1], c[2]]).collect();
        let q = &qs[..pos.len()];
        let ops = SplineOps::new(6, [8, 8, 8], [4.0, 4.0, 4.0]);
        let grid = ops.assign(&pos, q);
        let total: f64 = q.iter().sum();
        prop_assert!((grid.sum() - total).abs() < 1e-9 * (1.0 + total.abs()));
    }

    /// Restriction/prolongation adjointness for random grids.
    #[test]
    fn transfer_adjointness(seed in 0u64..500) {
        let mut state = seed.wrapping_add(7);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = Grid3::zeros([8, 8, 8]);
        for v in a.as_mut_slice() { *v = next(); }
        let mut b = Grid3::zeros([4, 4, 4]);
        for v in b.as_mut_slice() { *v = next(); }
        let t = LevelTransfer::new(6);
        let lhs = t.restrict(&a).dot(&b);
        let rhs = a.dot(&t.prolong(&b));
        prop_assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    }

    /// Fixed-point round trip bounded by half an ULP; ordering preserved.
    #[test]
    fn fixed_point_quantisation(x in -60.0f64..60.0, y in -60.0f64..60.0) {
        let fx = Fix32::<24>::from_f64(x);
        let fy = Fix32::<24>::from_f64(y);
        prop_assert!((fx.to_f64() - x).abs() <= 0.5 * Fix32::<24>::EPSILON);
        if x + Fix32::<24>::EPSILON < y {
            prop_assert!(fx < fy);
        }
    }

    /// Minimum image is idempotent and within the half-box.
    #[test]
    fn min_image_bounds(
        ax in -20.0f64..20.0, ay in -20.0f64..20.0, az in -20.0f64..20.0,
        bx in -20.0f64..20.0, by in -20.0f64..20.0, bz in -20.0f64..20.0,
    ) {
        let l = [3.0, 4.0, 5.0];
        let d = vec3::min_image([ax, ay, az], [bx, by, bz], l);
        for j in 0..3 {
            prop_assert!(d[j].abs() <= l[j] / 2.0 + 1e-9);
        }
    }

    /// Grid periodic indexing: get after set through any alias.
    #[test]
    fn grid_periodic_aliasing(x in -50i64..50, y in -50i64..50, z in -50i64..50) {
        let mut g = Grid3::zeros([4, 8, 16]);
        g.set([x, y, z], 2.5);
        prop_assert_eq!(g.get([x + 4, y - 8, z + 32]), 2.5);
    }

    /// The buffered axis convolution equals the naive reference for
    /// arbitrary kernels, grids and axes (the GCU's functional model).
    #[test]
    fn axis_convolution_equivalence(
        seed in 0u64..200,
        gc in 1usize..5,
        axis in 0usize..3,
    ) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(3);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let taps: Vec<f64> = (0..2 * gc + 1).map(|_| next()).collect();
        let kernel = Kernel1D::from_vals(gc, taps);
        let mut g = Grid3::zeros([8, 12, 16]);
        for v in g.as_mut_slice() { *v = next(); }
        let fast = convolve_axis(&g, &kernel, axis);
        let slow = convolve_axis_naive(&g, &kernel, axis);
        for ((_, a), (_, b)) in fast.iter().zip(slow.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Axis convolution is linear: K⊛(a·X + Y) = a·(K⊛X) + K⊛Y.
    #[test]
    fn convolution_linearity(seed in 0u64..100, scale in -3.0f64..3.0) {
        let mut state = seed.wrapping_add(11);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let kernel = Kernel1D::from_vals(2, (0..5).map(|_| next()).collect());
        let mut x = Grid3::zeros([8, 8, 8]);
        let mut y = Grid3::zeros([8, 8, 8]);
        for v in x.as_mut_slice() { *v = next(); }
        for v in y.as_mut_slice() { *v = next(); }
        let mut combo = x.clone();
        combo.scale(scale);
        combo.accumulate(&y);
        let lhs = convolve_axis(&combo, &kernel, 1);
        let mut rhs = convolve_axis(&x, &kernel, 1);
        rhs.scale(scale);
        rhs.accumulate(&convolve_axis(&y, &kernel, 1));
        for ((_, a), (_, b)) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((a - b).abs() < 1e-11);
        }
    }

    /// Gauss–Legendre rules integrate arbitrary polynomials of degree
    /// ≤ 2n−1 exactly.
    #[test]
    fn quadrature_exactness(n in 1usize..12, c0 in -2.0f64..2.0, c1 in -2.0f64..2.0, c2 in -2.0f64..2.0) {
        let deg = 2 * n - 1;
        let q = GaussLegendre::new(n);
        // f(x) = c0 + c1·x^(deg−1) + c2·x^deg
        let f = |x: f64| c0 + c1 * x.powi(deg as i32 - 1) + c2 * x.powi(deg as i32);
        let got = q.integrate(f);
        let exact_term = |k: i32, c: f64| if k % 2 == 1 { 0.0 } else { 2.0 * c / (k as f64 + 1.0) };
        let want = exact_term(0, c0) + exact_term(deg as i32 - 1, c1) + exact_term(deg as i32, c2);
        prop_assert!((got - want).abs() < 1e-11 * (1.0 + want.abs()));
    }

    /// Water boxes are rigid TIP3P for any seed/size.
    #[test]
    fn water_box_always_rigid(n in 1usize..40, seed in 0u64..500) {
        use mdgrape4a_tme::md::water::water_box;
        use mdgrape4a_tme::md::units::tip3p;
        let sys = water_box(n, seed);
        for w in &sys.waters {
            let d = {
                let a = sys.pos[w.o];
                let b = sys.pos[w.h1];
                ((a[0]-b[0]).powi(2) + (a[1]-b[1]).powi(2) + (a[2]-b[2]).powi(2)).sqrt()
            };
            prop_assert!((d - tip3p::R_OH).abs() < 1e-9);
        }
    }
}
