//! Cross-backend accuracy property suite (DESIGN.md §14): every solver
//! behind the `LongRangeBackend` plan/execute interface is measured
//! against the `crates/reference` pairwise Ewald oracle at one fixed
//! tolerance, the quasi-2D slab geometry against an image-charge oracle
//! built from the same reference Ewald on the extended box, and every
//! backend's execute path is bitwise deterministic across thread counts.

use std::sync::Arc;

use mdgrape4a_tme::md::backend::{
    plan_backend, slab_dipole_correction, slab_extend_system, BackendParams, PswfParams,
    SlabParams, SpmeParams,
};
use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::mesh::model::relative_force_error;
use mdgrape4a_tme::mesh::{CoulombResult, CoulombSystem};
use mdgrape4a_tme::num::pool::Pool;
use mdgrape4a_tme::reference::ewald::{Ewald, EwaldParams};
use mdgrape4a_tme::tme::TmeParams;

/// One fixed accuracy bar for every backend: relative RMS force error and
/// relative energy error against the reference-quality pairwise Ewald.
const FORCE_TOL: f64 = 2e-3;
const ENERGY_TOL: f64 = 2e-3;

fn water(n: usize, seed: u64) -> CoulombSystem {
    water_box(n, seed).coulomb_system()
}

/// Small boxes have much finer grid spacing than the paper's h ≈ 0.31 nm,
/// so the slowest middle-shell Gaussian needs the larger grid cutoff
/// (same reasoning as `tests/cross_method.rs`).
fn mesh_params(alpha: f64, r_cut: f64) -> TmeParams {
    TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 16,
        m_gaussians: 4,
        alpha,
        r_cut,
    }
}

/// Every periodic backend the planner knows, on a 16³ mesh.
fn periodic_backends(alpha: f64, r_cut: f64) -> Vec<(&'static str, BackendParams)> {
    vec![
        ("TME", BackendParams::Tme(mesh_params(alpha, r_cut))),
        (
            "SPME",
            BackendParams::Spme(SpmeParams {
                n: [16; 3],
                p: 6,
                alpha,
                r_cut,
            }),
        ),
        (
            "SPME-PSWF",
            BackendParams::SpmePswf(PswfParams {
                n: [16; 3],
                p: 8,
                alpha,
                r_cut,
                shape: 0.0,
            }),
        ),
        (
            "Ewald",
            BackendParams::Ewald(EwaldParams {
                alpha,
                r_cut,
                n_cut: 12,
            }),
        ),
        ("MSM", BackendParams::Msm(mesh_params(alpha, r_cut))),
    ]
}

/// Plan `params` for `sys`'s box and run one `compute_into` on a
/// `threads`-wide pool.
fn run_backend(params: &BackendParams, sys: &CoulombSystem, threads: usize) -> CoulombResult {
    let plan = plan_backend(params, sys.box_l).expect("backend configuration rejected");
    let mut ws = plan.make_workspace_with_pool(Arc::new(Pool::new(threads)));
    let mut out = CoulombResult::zeros(sys.len());
    plan.compute_into(sys, &mut ws, &mut out)
        .expect("backend execute failed");
    out
}

fn force_bits(r: &CoulombResult) -> Vec<u64> {
    r.forces.iter().flatten().map(|c| c.to_bits()).collect()
}

/// One periodic backend against the pairwise Ewald oracle within the
/// one fixed tolerance — the interchangeability contract that lets
/// tme-serve hand any of them to a tenant. Split into one `#[test]` per
/// backend (below) so the CI backend matrix can run them by name.
fn check_periodic_backend(want: &str) {
    let sys = water(343, 17);
    let r_cut = 1.0;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let oracle = Ewald::new(EwaldParams::reference_quality(sys.box_l, 1e-14)).compute(&sys);
    let (name, params) = periodic_backends(alpha, r_cut)
        .into_iter()
        .find(|(n, _)| *n == want)
        .expect("unknown backend name in test");
    let got = run_backend(&params, &sys, 2);
    let f_err = relative_force_error(&got.forces, &oracle.forces);
    let e_err = ((got.energy - oracle.energy) / oracle.energy).abs();
    assert!(f_err < FORCE_TOL, "{name} force error {f_err:e}");
    assert!(e_err < ENERGY_TOL, "{name} energy error {e_err:e}");
}

#[test]
fn oracle_tme() {
    check_periodic_backend("TME");
}

#[test]
fn oracle_spme_bspline() {
    check_periodic_backend("SPME");
}

#[test]
fn oracle_spme_pswf() {
    check_periodic_backend("SPME-PSWF");
}

#[test]
fn oracle_ewald() {
    check_periodic_backend("Ewald");
}

#[test]
fn oracle_msm() {
    check_periodic_backend("MSM");
}

/// A deterministic net-neutral random system (splitmix64 positions,
/// alternating unit charges) in a cubic box.
fn random_neutral(n: usize, box_l: f64, seed: u64) -> CoulombSystem {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let pos = (0..n)
        .map(|_| [next() * box_l, next() * box_l, next() * box_l])
        .collect();
    let q = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    CoulombSystem::new(pos, q, [box_l; 3])
}

/// The PSWF window's whole point: on a *marginal* grid, where the grid
/// spacing dominates the error budget, it is strictly more accurate
/// than the B-spline window of the same order — through the backend
/// interface, against the pairwise oracle. (The fewer-grid-points half
/// of the claim lives in `crates/reference/src/spme.rs` and
/// BENCH_pipeline.json; on finer grids both windows bottom out at the
/// same splitting-error floor.)
#[test]
fn pswf_window_beats_bspline_on_a_marginal_grid() {
    let sys = random_neutral(60, 4.0, 2024);
    let r_cut = 1.2;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-5);
    let oracle = Ewald::new(EwaldParams::reference_quality(sys.box_l, 1e-14)).compute(&sys);
    let err = |params: &BackendParams| {
        relative_force_error(&run_backend(params, &sys, 2).forces, &oracle.forces)
    };
    let bspline = err(&BackendParams::Spme(SpmeParams {
        n: [16; 3],
        p: 8,
        alpha,
        r_cut,
    }));
    let pswf = err(&BackendParams::SpmePswf(PswfParams {
        n: [16; 3],
        p: 8,
        alpha,
        r_cut,
        shape: 0.0,
    }));
    assert!(
        pswf <= bspline,
        "PSWF {pswf:e} worse than B-spline {bspline:e} on the same grid"
    );
}

/// A small charged slab: atoms confined to the lower half of the real
/// box in z, net-neutral, away from the walls.
fn slab_system() -> CoulombSystem {
    let mut pos = Vec::new();
    let mut q = Vec::new();
    for i in 0..12usize {
        let t = i as f64;
        pos.push([
            0.3 + 0.71 * (t * 0.37).fract() * 2.4,
            0.2 + 0.83 * (t * 0.59).fract() * 2.6,
            0.4 + 0.2 * t,
        ]);
        q.push(if i % 2 == 0 { 1.0 } else { -1.0 });
    }
    CoulombSystem::new(pos, q, [3.0, 3.0, 3.0])
}

fn slab_params(gamma_top: f64, gamma_bot: f64, n_images: u32) -> SlabParams {
    let r_cut = 1.2;
    SlabParams {
        n: [16, 16, 64],
        p: 6,
        alpha: EwaldParams::alpha_from_tolerance(r_cut, 1e-5),
        r_cut,
        gamma_top,
        gamma_bot,
        n_images,
    }
}

/// The slab oracle: image-augment the system exactly as the backend
/// does, solve the extended periodic box with the reference Ewald, apply
/// the same Yeh–Berkowitz dipole correction, and reduce to the real
/// atoms with the image-charge energy convention E = ½ Σ_real q·φ.
fn slab_oracle(sys: &CoulombSystem, p: &SlabParams) -> CoulombResult {
    // Placeholder box; `slab_extend_system` overwrites it.
    let mut ext = CoulombSystem::new(Vec::new(), Vec::new(), [1.0; 3]);
    slab_extend_system(sys, p.gamma_bot, p.gamma_top, p.n_images, &mut ext);
    let mut full = Ewald::new(EwaldParams::reference_quality(ext.box_l, 1e-14)).compute(&ext);
    slab_dipole_correction(&ext, &mut full);
    let n = sys.len();
    let mut out = CoulombResult::zeros(n);
    for i in 0..n {
        out.potentials[i] = full.potentials[i];
        out.forces[i] = full.forces[i];
        out.energy += 0.5 * sys.q[i] * full.potentials[i];
    }
    out
}

/// The quasi-2D slab backend reproduces the image-charge oracle for the
/// vacuum gap (γ = 0) and for asymmetric dielectric walls.
#[test]
fn oracle_slab() {
    let sys = slab_system();
    for (gamma_top, gamma_bot) in [(0.0, 0.0), (-1.0, 0.25)] {
        let p = slab_params(gamma_top, gamma_bot, 1);
        let got = run_backend(&BackendParams::Slab(p), &sys, 2);
        let want = slab_oracle(&sys, &p);
        let f_err = relative_force_error(&got.forces, &want.forces);
        let e_err = ((got.energy - want.energy) / want.energy).abs();
        assert!(
            f_err < FORCE_TOL,
            "slab(γ={gamma_top},{gamma_bot}) force error {f_err:e}"
        );
        assert!(
            e_err < ENERGY_TOL,
            "slab(γ={gamma_top},{gamma_bot}) energy error {e_err:e}"
        );
    }
}

/// γ = 0 images carry zero charge, so keeping or dropping the image
/// layers must not change the physics (only rounding noise from the
/// zero-charge spreading).
#[test]
fn slab_zero_reflection_images_are_inert() {
    let sys = slab_system();
    let with_images = run_backend(&BackendParams::Slab(slab_params(0.0, 0.0, 1)), &sys, 1);
    let without = run_backend(&BackendParams::Slab(slab_params(0.0, 0.0, 0)), &sys, 1);
    let rel = ((with_images.energy - without.energy) / without.energy).abs();
    assert!(
        rel < 1e-9,
        "zero-charge images shifted the energy by {rel:e}"
    );
    let f_err = relative_force_error(&with_images.forces, &without.forces);
    assert!(f_err < 1e-9, "zero-charge images moved forces by {f_err:e}");
}

/// Bitwise determinism across thread counts, per backend: the checkpoint
/// and plan-cache contracts both lean on `TME_THREADS` not touching a
/// single bit of any backend's output.
#[test]
fn every_backend_is_bitwise_deterministic_across_threads() {
    let sys = water(125, 7);
    let r_cut = 0.7;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let mut cases: Vec<(&'static str, BackendParams)> = periodic_backends(alpha, r_cut);
    cases.push(("slab", BackendParams::Slab(slab_params(-1.0, 0.25, 1))));
    for (name, params) in cases {
        let sys = if name == "slab" {
            slab_system()
        } else {
            sys.clone()
        };
        let a = run_backend(&params, &sys, 1);
        let b = run_backend(&params, &sys, 4);
        assert_eq!(
            a.energy.to_bits(),
            b.energy.to_bits(),
            "{name} energy changed bits with threads"
        );
        assert_eq!(
            force_bits(&a),
            force_bits(&b),
            "{name} forces changed bits with threads"
        );
    }
}
