//! Randomised property tests on the core data structures and mathematical
//! invariants of the TME stack.
//!
//! Formerly a `proptest` suite; now driven by the in-tree deterministic
//! [`SplitMix64`] generator so the workspace builds with zero external
//! dependencies and every failure is reproducible from the printed case
//! seed alone (no shrink files, no OS entropy).

use std::sync::Arc;

use mdgrape4a_tme::mesh::bspline::BSpline;
use mdgrape4a_tme::mesh::{CoulombSystem, Grid3, SplineOps};
use mdgrape4a_tme::num::fft::Fft;
use mdgrape4a_tme::num::fixed::Fix32;
use mdgrape4a_tme::num::pool::Pool;
use mdgrape4a_tme::num::quadrature::GaussLegendre;
use mdgrape4a_tme::num::rng::SplitMix64;
use mdgrape4a_tme::num::special::{erf, erfc};
use mdgrape4a_tme::num::vec3;
use mdgrape4a_tme::num::Complex64;
use mdgrape4a_tme::tme::convolve::{convolve_axis, convolve_axis_naive};
use mdgrape4a_tme::tme::kernel::Kernel1D;
use mdgrape4a_tme::tme::levels::LevelTransfer;
use mdgrape4a_tme::tme::{Tme, TmeConfigError, TmeParams, TmeWorkspace};

const CASES: u64 = 64;

/// Run `body` for `CASES` independently seeded generators, printing the
/// failing case index before re-raising any panic.
fn for_cases(name: &str, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xD1CE_5EED ^ (case << 8) ^ case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{name}` failed at case {case}");
            std::panic::resume_unwind(e);
        }
    }
}

/// erf/erfc complement and range for arbitrary finite inputs.
#[test]
fn erf_complement_and_bounds() {
    for_cases("erf_complement_and_bounds", |rng| {
        let x = rng.gen_range(-30.0..30.0);
        let e = erf(x);
        let c = erfc(x);
        assert!((-1.0..=1.0).contains(&e));
        assert!((0.0..=2.0).contains(&c));
        assert!((e + c - 1.0).abs() < 1e-14, "x = {x}");
    });
}

/// FFT round trip restores arbitrary signals.
#[test]
fn fft_roundtrip() {
    for_cases("fft_roundtrip", |rng| {
        let n = 1usize << (1 + rng.gen_index(7));
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
            .collect();
        let plan = Fft::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-11, "n = {n}");
        }
    });
}

/// B-spline partition of unity at arbitrary particle positions.
#[test]
fn spline_partition_of_unity() {
    for_cases("spline_partition_of_unity", |rng| {
        let u = rng.gen_range(-100.0..100.0);
        let p = [4usize, 6, 8][rng.gen_index(3)];
        let (_, w, dw) = BSpline::new(p).weights(u);
        let s: f64 = w.iter().sum();
        let ds: f64 = dw.iter().sum();
        assert!((s - 1.0).abs() < 1e-12, "u = {u}, p = {p}");
        assert!(ds.abs() < 1e-12, "u = {u}, p = {p}");
    });
}

/// Charge assignment conserves total charge for arbitrary charges and
/// positions (inside or outside the box).
#[test]
fn assignment_conserves_charge() {
    for_cases("assignment_conserves_charge", |rng| {
        let n = 1 + rng.gen_index(10);
        let pos: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                ]
            })
            .collect();
        let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let ops = SplineOps::new(6, [8, 8, 8], [4.0, 4.0, 4.0]);
        let grid = ops.assign(&pos, &q);
        let total: f64 = q.iter().sum();
        assert!(
            (grid.sum() - total).abs() < 1e-9 * (1.0 + total.abs()),
            "n = {n}"
        );
    });
}

/// Restriction/prolongation adjointness for random grids.
#[test]
fn transfer_adjointness() {
    for_cases("transfer_adjointness", |rng| {
        let mut a = Grid3::zeros([8, 8, 8]);
        for v in a.as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        let mut b = Grid3::zeros([4, 4, 4]);
        for v in b.as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        let t = LevelTransfer::new(6);
        let lhs = t.restrict(&a).dot(&b);
        let rhs = a.dot(&t.prolong(&b));
        assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    });
}

/// Fixed-point round trip bounded by half an ULP; ordering preserved.
#[test]
fn fixed_point_quantisation() {
    for_cases("fixed_point_quantisation", |rng| {
        let x = rng.gen_range(-60.0..60.0);
        let y = rng.gen_range(-60.0..60.0);
        let fx = Fix32::<24>::from_f64(x);
        let fy = Fix32::<24>::from_f64(y);
        assert!(
            (fx.to_f64() - x).abs() <= 0.5 * Fix32::<24>::EPSILON,
            "x = {x}"
        );
        if x + Fix32::<24>::EPSILON < y {
            assert!(fx < fy, "x = {x}, y = {y}");
        }
    });
}

/// Minimum image is idempotent and within the half-box.
#[test]
fn min_image_bounds() {
    for_cases("min_image_bounds", |rng| {
        let l = [3.0, 4.0, 5.0];
        let a = [
            rng.gen_range(-20.0..20.0),
            rng.gen_range(-20.0..20.0),
            rng.gen_range(-20.0..20.0),
        ];
        let b = [
            rng.gen_range(-20.0..20.0),
            rng.gen_range(-20.0..20.0),
            rng.gen_range(-20.0..20.0),
        ];
        let d = vec3::min_image(a, b, l);
        for j in 0..3 {
            assert!(d[j].abs() <= l[j] / 2.0 + 1e-9, "a = {a:?}, b = {b:?}");
        }
    });
}

/// Grid periodic indexing: get after set through any alias.
#[test]
fn grid_periodic_aliasing() {
    for_cases("grid_periodic_aliasing", |rng| {
        let x = rng.gen_index(100) as i64 - 50;
        let y = rng.gen_index(100) as i64 - 50;
        let z = rng.gen_index(100) as i64 - 50;
        let mut g = Grid3::zeros([4, 8, 16]);
        g.set([x, y, z], 2.5);
        assert_eq!(g.get([x + 4, y - 8, z + 32]), 2.5, "({x}, {y}, {z})");
    });
}

/// The buffered axis convolution equals the naive reference for arbitrary
/// kernels, grids and axes (the GCU's functional model).
#[test]
fn axis_convolution_equivalence() {
    for_cases("axis_convolution_equivalence", |rng| {
        let gc = 1 + rng.gen_index(4);
        let axis = rng.gen_index(3);
        let taps: Vec<f64> = (0..2 * gc + 1).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let kernel = Kernel1D::from_vals(gc, taps);
        let mut g = Grid3::zeros([8, 12, 16]);
        for v in g.as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        let fast = convolve_axis(&g, &kernel, axis);
        let slow = convolve_axis_naive(&g, &kernel, axis);
        for ((_, a), (_, b)) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() < 1e-12, "gc = {gc}, axis = {axis}");
        }
    });
}

/// Axis convolution is linear: K⊛(a·X + Y) = a·(K⊛X) + K⊛Y.
#[test]
fn convolution_linearity() {
    for_cases("convolution_linearity", |rng| {
        let scale = rng.gen_range(-3.0..3.0);
        let kernel = Kernel1D::from_vals(2, (0..5).map(|_| rng.gen_range(-0.5..0.5)).collect());
        let mut x = Grid3::zeros([8, 8, 8]);
        let mut y = Grid3::zeros([8, 8, 8]);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        for v in y.as_mut_slice() {
            *v = rng.gen_range(-0.5..0.5);
        }
        let mut combo = x.clone();
        combo.scale(scale);
        combo.accumulate(&y);
        let lhs = convolve_axis(&combo, &kernel, 1);
        let mut rhs = convolve_axis(&x, &kernel, 1);
        rhs.scale(scale);
        rhs.accumulate(&convolve_axis(&y, &kernel, 1));
        for ((_, a), (_, b)) in lhs.iter().zip(rhs.iter()) {
            assert!((a - b).abs() < 1e-11, "scale = {scale}");
        }
    });
}

/// Gauss–Legendre rules integrate arbitrary polynomials of degree ≤ 2n−1
/// exactly.
#[test]
fn quadrature_exactness() {
    for_cases("quadrature_exactness", |rng| {
        let n = 1 + rng.gen_index(11);
        let c0 = rng.gen_range(-2.0..2.0);
        let c1 = rng.gen_range(-2.0..2.0);
        let c2 = rng.gen_range(-2.0..2.0);
        let deg = (2 * n - 1) as i32;
        let q = GaussLegendre::new(n);
        // f(x) = c0 + c1·x^(deg−1) + c2·x^deg
        let f = |x: f64| c0 + c1 * x.powi(deg - 1) + c2 * x.powi(deg);
        let got = q.integrate(f);
        let exact_term = |k: i32, c: f64| {
            if k % 2 == 1 {
                0.0
            } else {
                2.0 * c / (f64::from(k) + 1.0)
            }
        };
        let want = exact_term(0, c0) + exact_term(deg - 1, c1) + exact_term(deg, c2);
        assert!((got - want).abs() < 1e-11 * (1.0 + want.abs()), "n = {n}");
    });
}

/// Water boxes are rigid TIP3P for any seed/size.
#[test]
fn water_box_always_rigid() {
    use mdgrape4a_tme::md::units::tip3p;
    use mdgrape4a_tme::md::water::water_box;
    for_cases("water_box_always_rigid", |rng| {
        let n = 1 + rng.gen_index(39);
        let seed = rng.next_u64() % 500;
        let sys = water_box(n, seed);
        for w in &sys.waters {
            let a = sys.pos[w.o];
            let b = sys.pos[w.h1];
            let d = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
            assert!((d - tip3p::R_OH).abs() < 1e-9, "n = {n}, seed = {seed}");
        }
    });
}

/// 200 atoms (100 exactly-cancelling ion pairs) at random positions.
fn random_neutral_system(rng: &mut SplitMix64, box_l: f64) -> CoulombSystem {
    let n = 200;
    let pos = (0..n)
        .map(|_| {
            [
                rng.uniform() * box_l,
                rng.uniform() * box_l,
                rng.uniform() * box_l,
            ]
        })
        .collect();
    let q = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    CoulombSystem::new(pos, q, [box_l; 3])
}

fn paper_like_tme(box_l: f64) -> Tme {
    Tme::new(
        TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha: 2.0,
            r_cut: 1.2,
        },
        [box_l; 3],
    )
}

/// The deterministic-reduction contract: `Tme::compute_with` is bitwise
/// identical at every thread count (fixed part boundaries + ordered merge),
/// so `TME_THREADS` is a pure performance knob.
#[test]
fn compute_with_is_bitwise_identical_across_thread_counts() {
    let tme = paper_like_tme(4.0);
    let mut rng = SplitMix64::seed_from_u64(0xD1CE_5EED);
    let system = random_neutral_system(&mut rng, 4.0);
    let mut ws1 = TmeWorkspace::with_pool(&tme, Arc::new(Pool::new(1)));
    let serial = tme.compute_with(&mut ws1, &system).clone();
    for threads in [2usize, 4] {
        let mut wst = TmeWorkspace::with_pool(&tme, Arc::new(Pool::new(threads)));
        let parallel = tme.compute_with(&mut wst, &system);
        assert_eq!(
            serial.energy.to_bits(),
            parallel.energy.to_bits(),
            "energy bits at {threads} threads"
        );
        for (i, (a, b)) in serial.forces.iter().zip(&parallel.forces).enumerate() {
            for axis in 0..3 {
                assert_eq!(
                    a[axis].to_bits(),
                    b[axis].to_bits(),
                    "force bits atom {i} axis {axis} at {threads} threads"
                );
            }
        }
        for (i, (a, b)) in serial
            .potentials
            .iter()
            .zip(&parallel.potentials)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "potential bits atom {i}");
        }
    }
}

/// The allocating wrappers are thin shells over the workspace path: same
/// bits, call after call (the reused workspace carries no state across
/// calls that could change results).
#[test]
fn allocating_wrapper_matches_workspace_path_bitwise() {
    let tme = paper_like_tme(4.0);
    let mut rng = SplitMix64::seed_from_u64(0x5EED_0200);
    let system = random_neutral_system(&mut rng, 4.0);
    let wrapper = tme.compute(&system);
    let mut ws = tme.make_workspace();
    for round in 0..3 {
        let with = tme.compute_with(&mut ws, &system);
        assert_eq!(
            wrapper.energy.to_bits(),
            with.energy.to_bits(),
            "energy bits round {round}"
        );
        for (i, (a, b)) in wrapper.forces.iter().zip(&with.forces).enumerate() {
            for axis in 0..3 {
                assert_eq!(a[axis].to_bits(), b[axis].to_bits(), "atom {i} axis {axis}");
            }
        }
    }
}

/// `Tme::try_new` reports every misconfiguration the panicking front-end
/// would abort on, as typed [`TmeConfigError`] values.
#[test]
fn try_new_reports_typed_config_errors() {
    let good = TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 8,
        m_gaussians: 4,
        alpha: 2.0,
        r_cut: 1.2,
    };
    assert!(Tme::try_new(good, [4.0; 3]).is_ok());

    let mut no_levels = good;
    no_levels.levels = 0;
    assert_eq!(
        Tme::try_new(no_levels, [4.0; 3]).unwrap_err(),
        TmeConfigError::NoLevels
    );

    let mut no_gaussians = good;
    no_gaussians.m_gaussians = 0;
    assert_eq!(
        Tme::try_new(no_gaussians, [4.0; 3]).unwrap_err(),
        TmeConfigError::NoGaussians
    );

    let mut indivisible = good;
    indivisible.n = [18; 3];
    indivisible.levels = 2; // 18 divides by 2 but not by 2^2
    assert_eq!(
        Tme::try_new(indivisible, [4.0; 3]).unwrap_err(),
        TmeConfigError::IndivisibleGrid {
            n: [18; 3],
            scale: 4
        }
    );

    let mut tiny_top = good;
    tiny_top.levels = 2; // 16 >> 2 = 4 < p = 6
    assert_eq!(
        Tme::try_new(tiny_top, [4.0; 3]).unwrap_err(),
        TmeConfigError::TopGridTooSmall {
            n_top: [4; 3],
            p: 6
        }
    );
    // Every error Displays a non-empty diagnostic.
    for e in [
        TmeConfigError::NoLevels,
        TmeConfigError::NoGaussians,
        TmeConfigError::IndivisibleGrid {
            n: [18; 3],
            scale: 2,
        },
        TmeConfigError::TopGridTooSmall {
            n_top: [4; 3],
            p: 6,
        },
    ] {
        assert!(!e.to_string().is_empty());
    }
}
