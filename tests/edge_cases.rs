//! Degenerate-input robustness: empty systems, single atoms, zero
//! charges, extreme parameters — the paths a downstream user will hit
//! first when wiring the library up wrong.

use mdgrape4a_tme::machine::{simulate_step, MachineConfig, StepWorkload};
use mdgrape4a_tme::mesh::CoulombSystem;
use mdgrape4a_tme::reference::ewald::{Ewald, EwaldParams};
use mdgrape4a_tme::reference::Spme;
use mdgrape4a_tme::tme::{alpha_from_rtol, Tme, TmeParams};

fn params() -> TmeParams {
    TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 8,
        m_gaussians: 4,
        alpha: alpha_from_rtol(1.0, 1e-4),
        r_cut: 1.0,
    }
}

#[test]
fn empty_system_returns_zeros_everywhere() {
    let sys = CoulombSystem::new(vec![], vec![], [4.0; 3]);
    let tme = Tme::new(params(), [4.0; 3]).compute(&sys);
    assert_eq!(tme.energy, 0.0);
    assert!(tme.forces.is_empty());
    let spme = Spme::new([16; 3], [4.0; 3], 2.75, 6, 1.0).compute(&sys);
    assert_eq!(spme.energy, 0.0);
    let ew = Ewald::new(EwaldParams {
        alpha: 2.0,
        r_cut: 1.5,
        n_cut: 6,
    })
    .compute(&sys);
    assert_eq!(ew.energy, 0.0);
}

#[test]
fn single_atom_sees_only_self_terms() {
    // One charge: no pair interactions; total = self + mesh self-image
    // terms; force ~0 by symmetry of its own periodic images.
    let sys = CoulombSystem::new(vec![[2.0; 3]], vec![1.0], [4.0; 3]);
    let out = Tme::new(params(), [4.0; 3]).compute(&sys);
    let f = out.forces[0];
    assert!(f.iter().all(|c| c.abs() < 1e-6), "{f:?}");
    // Madelung-like self energy of a periodic unit charge with background
    // is negative and finite.
    assert!(out.energy.is_finite() && out.energy < 0.0, "{}", out.energy);
}

#[test]
fn zero_charges_are_exactly_neutral() {
    let sys = CoulombSystem::new(
        vec![[1.0; 3], [2.0; 3], [3.0, 1.0, 2.0]],
        vec![0.0, 0.0, 0.0],
        [4.0; 3],
    );
    let out = Tme::new(params(), [4.0; 3]).compute(&sys);
    assert_eq!(out.energy, 0.0);
    for f in &out.forces {
        assert_eq!(*f, [0.0; 3]);
    }
}

#[test]
fn coincident_charges_do_not_crash_mesh() {
    // Two charges at the same point: the pair loop skips r² = 0; the mesh
    // handles them as a doubled charge.
    let sys = CoulombSystem::new(vec![[2.0; 3], [2.0; 3]], vec![0.5, 0.5], [4.0; 3]);
    let out = Tme::new(params(), [4.0; 3]).compute(&sys);
    assert!(out.energy.is_finite());
}

#[test]
fn machine_simulator_degenerate_workloads() {
    let cfg = MachineConfig::mdgrape4a();
    // One atom in the whole machine.
    let mut w = StepWorkload::paper_fig9();
    w.n_atoms = 1;
    let r = simulate_step(&cfg, &w);
    assert!(r.total_us.is_finite() && r.total_us > 0.0);
    // Zero imbalance.
    let mut w2 = StepWorkload::paper_fig9();
    w2.imbalance = 0.0;
    assert!(simulate_step(&cfg, &w2).total_us > 0.0);
    // No long range at all.
    let mut w3 = StepWorkload::paper_fig9();
    w3.long_range = false;
    let r3 = simulate_step(&cfg, &w3);
    assert!(r3.long_range_span.is_none());
    assert_eq!(r3.long_range_us(), 0.0);
}

#[test]
fn extreme_alpha_values_stay_finite() {
    let sys = CoulombSystem::new(vec![[1.0; 3], [3.0; 3]], vec![1.0, -1.0], [4.0; 3]);
    for alpha in [0.1, 10.0] {
        let p = TmeParams { alpha, ..params() };
        let out = Tme::new(p, [4.0; 3]).compute(&sys);
        assert!(out.energy.is_finite(), "alpha={alpha}");
        assert!(out.forces.iter().all(|f| f.iter().all(|c| c.is_finite())));
    }
}

#[test]
fn tiny_and_large_gaussian_counts() {
    let sys = CoulombSystem::new(vec![[1.0; 3], [2.5; 3]], vec![1.0, -1.0], [4.0; 3]);
    for m in [1usize, 12] {
        let p = TmeParams {
            m_gaussians: m,
            ..params()
        };
        let out = Tme::new(p, [4.0; 3]).compute(&sys);
        assert!(out.energy.is_finite(), "M={m}");
    }
}
