//! The paper's headline claims as one executable acceptance suite —
//! every assertion here corresponds to a sentence in the paper (section
//! in the comment). Fast configurations only; the full-size versions live
//! in the `tme-bench` harnesses and EXPERIMENTS.md.

use mdgrape4a_tme::machine::report::{table2, OverlapReport};
use mdgrape4a_tme::machine::{simulate_step, MachineConfig, StepWorkload};
use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::mesh::model::relative_force_error;
use mdgrape4a_tme::reference::ewald::{Ewald, EwaldParams};
use mdgrape4a_tme::reference::msm::{msm_comm_words, separable_op_count, tme_comm_words};
use mdgrape4a_tme::reference::Spme;
use mdgrape4a_tme::tme::shells::{shell_exact, GaussianFit};
use mdgrape4a_tme::tme::{alpha_from_rtol, Msm, Tme, TmeParams};

/// §III.A, Eq. 4: the splitting telescopes exactly to 1/r.
#[test]
fn claim_splitting_is_exact() {
    let alpha = 2.2936;
    for i in 1..50 {
        let r = 0.1 * i as f64;
        let total = mdgrape4a_tme::tme::shells::short_range_exact(alpha, r)
            + shell_exact(alpha, 1, r)
            + mdgrape4a_tme::tme::shells::top_level_exact(alpha, 1, r);
        assert!((total - 1.0 / r).abs() < 1e-12 / r);
    }
}

/// §III.A / Fig. 3: "the deviation is small even in the single Gaussian
/// approximation (M = 1) ... the error decreases rapidly with increasing M".
#[test]
fn claim_gaussian_fit_converges_rapidly() {
    let errs: Vec<f64> = (1..=4)
        .map(|m| GaussianFit::new(1.0, m).normalised_max_error(5.0, 300))
        .collect();
    assert!(errs[0] < 0.05);
    for w in errs.windows(2) {
        assert!(w[1] < w[0] / 5.0, "not rapid: {errs:?}");
    }
}

/// §III.B / Table 1: "the accuracy is expected to be comparable to the
/// SPME with identical values of α, r_c, p, L, and N by increasing g_c
/// and M" — and M = 3, g_c = 8 suffice in the paper's h ≈ 0.31 nm regime.
#[test]
fn claim_tme_accuracy_comparable_to_spme() {
    let sys = water_box(343, 42).coulomb_system(); // h = L/16 ≈ 0.136 nm
    let box_l = sys.box_l;
    let r_cut = 1.0;
    let alpha = alpha_from_rtol(r_cut, 1e-4);
    let want = Ewald::new(EwaldParams::reference_quality(box_l, 1e-14)).compute(&sys);
    let spme_err = {
        let got = Spme::new([16; 3], box_l, alpha, 6, r_cut).compute(&sys);
        relative_force_error(&got.forces, &want.forces)
    };
    // Auto-tuned g_c (the finer-than-paper grid needs a larger cutoff —
    // exactly what §III.B's convergence study establishes).
    let params = mdgrape4a_tme::tme::errors::auto_params(box_l, [16; 3], r_cut, 6, 1e-4);
    let tme_err = {
        let got = Tme::new(params, box_l).compute(&sys);
        relative_force_error(&got.forces, &want.forces)
    };
    assert!(
        tme_err < 2.0 * spme_err + 1e-5,
        "TME {tme_err:e} not comparable to SPME {spme_err:e}"
    );
}

/// §III.C: "the computational and communication costs of the TME reduced
/// with respect to the B-spline MSM" at the MDGRAPE-4A parameters.
#[test]
fn claim_tme_cheaper_than_msm() {
    // Formulas at γ = 0.5 and 1 with g_c = 8, M = 4.
    for &(local, gamma) in &[(4u64, 0.5f64), (8, 1.0)] {
        let pts = local.pow(3);
        assert!(separable_op_count(pts, 8, 4) < pts * 17 * 17 * 17);
        assert!(tme_comm_words(gamma, 8, 4) < msm_comm_words(gamma, 8));
    }
    // Measured end-to-end on identical inputs.
    let sys = water_box(216, 9).coulomb_system();
    let params = TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 6,
        m_gaussians: 4,
        alpha: alpha_from_rtol(0.9, 1e-4),
        r_cut: 0.9,
    };
    let (tme_out, tme_stats) = Tme::new(params, sys.box_l).long_range(&sys);
    let (msm_out, msm_stats) = Msm::new(params, sys.box_l).long_range(&sys);
    assert!(msm_stats.madds > 10 * tme_stats.convolution.madds);
    assert!(relative_force_error(&tme_out.forces, &msm_out.forces) < 1e-3);
}

/// §V.A: "it requires 206 µs to complete the single MD time step. The
/// current performance of the system is approximately 1 µs/day".
#[test]
fn claim_step_time_and_throughput() {
    let cfg = MachineConfig::mdgrape4a();
    let rows = table2(&cfg, &StepWorkload::paper_fig9());
    let ours = rows.iter().find(|r| r.simulated).unwrap();
    assert!((ours.time_per_step_us - 206.0).abs() < 15.0);
    assert!((ours.performance_us_per_day - 1.0).abs() < 0.15);
}

/// §V.B: "the total evaluation time for the long-range part ... was
/// approximately 50 µs", with the published phase breakdown.
#[test]
fn claim_long_range_pipeline_breakdown() {
    let r = simulate_step(&MachineConfig::mdgrape4a(), &StepWorkload::paper_fig9());
    assert!((r.long_range_us() - 50.0).abs() < 12.0);
    assert!((r.phase("restriction L1").unwrap() - 1.5).abs() < 0.7);
    assert!((r.phase("convolution L1").unwrap() - 6.0).abs() < 2.0);
    assert!((r.phase("prolongation L1").unwrap() - 1.5).abs() < 0.7);
    assert!(r.phase("TMENW round trip").unwrap() < 20.0);
}

/// §V.C: "the additional cost of incorporating a long-range part ... was
/// approximately 10 µs, which is 5% of the single time step calculation"
/// — because the pipeline "can mostly overlap".
#[test]
fn claim_five_percent_overhead() {
    let rep = OverlapReport::compute(&MachineConfig::mdgrape4a(), &StepWorkload::paper_fig9());
    assert!(
        (rep.overhead_us() - 10.0).abs() < 6.0,
        "{}",
        rep.overhead_us()
    );
    assert!((rep.overhead_percent() - 5.0).abs() < 3.0);
    // Overlap: the LR span is several times the marginal cost.
    assert!(rep.with_long_range.long_range_us() > 3.0 * rep.overhead_us());
}

/// §V.D / Table 2: "MDGRAPE-4A reaches at least three times faster than
/// the best performance of any other commodity clusters, but still lower
/// than that of Anton 1".
#[test]
fn claim_table2_ranking() {
    let rows = table2(&MachineConfig::mdgrape4a(), &StepWorkload::paper_fig9());
    let perf: Vec<f64> = rows.iter().map(|r| r.performance_us_per_day).collect();
    let ours = perf[2];
    assert!(ours >= 3.0 * perf[0].max(perf[1]));
    assert!(ours < perf[3]); // Anton 1 still faster
}

/// §VI.A: "The time for GCU operations is eight times larger than
/// 32 × 32 × 32 operations theoretically" for the 64³ grid.
#[test]
fn claim_grid64_gcu_scaling() {
    let cfg = MachineConfig::mdgrape4a();
    let c32 = simulate_step(&cfg, &StepWorkload::paper_fig9())
        .phase("convolution L1")
        .unwrap();
    let c64 = simulate_step(&cfg, &StepWorkload::paper_grid64())
        .phase("convolution L1")
        .unwrap();
    let ratio = c64 / c32;
    assert!((6.0..9.0).contains(&ratio), "GCU scaling {ratio}");
}
