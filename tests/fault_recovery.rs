//! Cross-crate property tests of the fault-injection / checkpoint-restart
//! layer (DESIGN.md §11).
//!
//! Everything here is `Result`-based: this file tests the machinery whose
//! contract is to never panic, so the tests hold themselves to the same
//! rule (tme-lint rule L5; `assert!`/`assert_eq!` stay allowed).

use std::sync::Arc;

use mdgrape4a_tme::machine::{
    resume_run_faulted, simulate_run, simulate_run_faulted, FaultConfig, FaultModel, MachineConfig,
    RunCheckpoint, RunReport, StepWorkload,
};
use mdgrape4a_tme::md::backend::TmeBackend;
use mdgrape4a_tme::md::checkpoint::CheckpointError;
use mdgrape4a_tme::md::water::{thermalize, water_box};
use mdgrape4a_tme::md::{run_with_checkpoints, NveSim};
use mdgrape4a_tme::num::pool::Pool;
use mdgrape4a_tme::tme::{alpha_from_rtol, TmeParams, TmeWorkspace};

fn bits_of(v: &[[f64; 3]]) -> Vec<u64> {
    v.iter().flatten().map(|c| c.to_bits()).collect()
}

fn step_bits(r: &RunReport) -> Vec<u64> {
    r.step_us.iter().map(|t| t.to_bits()).collect()
}

fn paper_tme(box_l: [f64; 3], r_cut: f64) -> Result<TmeBackend, String> {
    let alpha = alpha_from_rtol(r_cut, 1e-4);
    TmeBackend::new(
        TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha,
            r_cut,
        },
        box_l,
    )
    .map_err(|e| format!("paper TME configuration rejected: {e}"))
}

/// The MD driver's checkpoint restarts a TME-solved trajectory bitwise:
/// kill after 7 of 10 steps, restore the step-4 checkpoint into a fresh
/// simulation, finish, and compare every position/velocity/force bit.
#[test]
fn nve_tme_checkpoint_restart_is_bitwise() -> Result<(), CheckpointError> {
    let mut sys = water_box(64, 6);
    thermalize(&mut sys, 300.0, 11);
    let r_cut = 0.55;
    let Ok(tme) = paper_tme(sys.box_l, r_cut) else {
        return Err(CheckpointError::Mismatch {
            what: "test TME configuration rejected",
        });
    };

    let total_steps = 10;
    let mut reference = NveSim::new(sys.clone(), &tme, 0.001, r_cut);
    reference.run(total_steps, total_steps);
    assert!(reference.last_error().is_none());

    let mut crashed = NveSim::new(sys.clone(), &tme, 0.001, r_cut);
    let run = run_with_checkpoints(&mut crashed, 7, 7, 4);
    assert!(run.fault.is_none());
    let (at, bytes) = match run.latest() {
        Some((at, bytes)) => (*at, bytes.clone()),
        None => {
            return Err(CheckpointError::Mismatch {
                what: "missing checkpoint",
            })
        }
    };
    assert_eq!(at, 4);
    drop(crashed);

    let mut restarted = NveSim::new(sys, &tme, 0.001, r_cut);
    restarted.restore(&bytes)?;
    for _ in at..total_steps {
        restarted.step();
    }
    assert!(restarted.last_error().is_none());
    assert_eq!(
        bits_of(&reference.system.pos),
        bits_of(&restarted.system.pos)
    );
    assert_eq!(
        bits_of(&reference.system.vel),
        bits_of(&restarted.system.vel)
    );
    assert_eq!(bits_of(reference.forces()), bits_of(restarted.forces()));
    Ok(())
}

/// The TME forces feeding that trajectory do not depend on the thread
/// count: 1-thread and 4-thread workspaces produce identical bits, so a
/// checkpoint taken on one host restarts bitwise on another.
#[test]
fn tme_forces_bitwise_identical_at_1_and_4_threads() -> Result<(), String> {
    let mut sys = water_box(64, 6);
    thermalize(&mut sys, 300.0, 11);
    let r_cut = 0.55;
    let tme = paper_tme(sys.box_l, r_cut)?;
    let coul = sys.coulomb_system();

    let mut bits: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 4] {
        let pool = Arc::new(Pool::new(threads));
        let mut ws = TmeWorkspace::with_pool(tme.tme(), pool);
        let out = tme.tme().compute_with(&mut ws, &coul);
        bits.push(bits_of(&out.forces));
    }
    assert_eq!(bits[0], bits[1], "TME forces changed bits with threads");
    Ok(())
}

/// The fault model is a pure function of its seed: two models with the
/// same config replay the same event sequence over the same machine run,
/// and a different seed produces a different one.
#[test]
fn fault_model_is_deterministic_in_its_seed() {
    let cfg = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    let run = |seed: u64| {
        let mut model = FaultModel::new(FaultConfig::chaos(seed, 0.02));
        simulate_run_faulted(&cfg, &w, 60, &mut model)
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.fault_overhead_us.to_bits(), b.fault_overhead_us.to_bits());
    assert_eq!(step_bits(&a), step_bits(&b));
    let c = run(8);
    assert_ne!(
        step_bits(&a),
        step_bits(&c),
        "different fault seeds gave identical runs"
    );
}

/// A fixed-seed faulted run completes, records a recovery for every
/// event, and a quiet model is bitwise invisible next to the plain
/// scheduler.
#[test]
fn faulted_run_completes_and_quiet_model_is_invisible() {
    let cfg = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    let steps = 80;
    let clean = simulate_run(&cfg, &w, steps);

    let mut quiet = FaultModel::new(FaultConfig::quiet(3));
    let silent = simulate_run_faulted(&cfg, &w, steps, &mut quiet);
    assert!(silent.faults.is_empty());
    assert_eq!(silent.fault_overhead_us.to_bits(), 0.0f64.to_bits());
    assert_eq!(
        step_bits(&clean),
        step_bits(&silent),
        "quiet model perturbed the schedule"
    );

    let mut model = FaultModel::new(FaultConfig::chaos(3, 0.03));
    let faulted = simulate_run_faulted(&cfg, &w, steps, &mut model);
    assert_eq!(faulted.step_us.len(), steps, "faulted run did not complete");
    assert!(!faulted.faults.is_empty(), "rate 0.03 produced no events");
    assert!(faulted.fault_overhead_us > 0.0);
    assert!(
        faulted.mean() > clean.mean(),
        "degradation cost no schedule time"
    );
    for record in &faulted.faults {
        // Every surviving event carries the recovery the machine applied.
        assert!(record.overhead_us >= 0.0, "{record:?}");
    }
}

/// A machine run split through checkpoint bytes lands bitwise on the
/// uninterrupted run; corrupted bytes surface as typed codec errors.
#[test]
fn machine_run_checkpoint_resume_and_corruption() -> Result<(), String> {
    let cfg = MachineConfig::mdgrape4a();
    let w = StepWorkload::paper_fig9();
    let config = FaultConfig::chaos(21, 0.02);
    let steps = 50;

    let mut straight_model = FaultModel::new(config.clone());
    let straight = simulate_run_faulted(&cfg, &w, steps, &mut straight_model);

    let mut model = FaultModel::new(config);
    let partial = simulate_run_faulted(&cfg, &w, steps / 2, &mut model);
    let bytes = RunCheckpoint {
        report: partial,
        model,
    }
    .to_bytes();

    // Corruption at any prefix is a typed error, never a panic.
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        if RunCheckpoint::from_bytes(&bytes[..cut]).is_ok() {
            return Err(format!("truncated checkpoint of {cut} bytes decoded"));
        }
    }
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0; 4]);
    if RunCheckpoint::from_bytes(&padded).is_ok() {
        return Err("checkpoint with trailing garbage decoded".into());
    }

    let restored = RunCheckpoint::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let resumed = resume_run_faulted(&cfg, &w, steps, restored);
    if straight.faults != resumed.faults {
        return Err("fault records diverged across resume".into());
    }
    if step_bits(&straight) != step_bits(&resumed) {
        return Err("step times diverged across resume".into());
    }
    Ok(())
}

/// The NVE exact-`erfc` degraded mode stays on the table-mode trajectory
/// to table accuracy — the fallback the in-step recovery switches to is
/// a faithful stand-in, not different physics.
#[test]
fn degraded_exact_mode_tracks_table_mode() -> Result<(), String> {
    let mut sys = water_box(64, 6);
    thermalize(&mut sys, 300.0, 11);
    let r_cut = 0.55;
    let tme = paper_tme(sys.box_l, r_cut)?;

    let run = |exact: bool| -> Result<f64, String> {
        let mut sim = NveSim::new(sys.clone(), &tme, 0.001, r_cut);
        sim.exact_short_range = exact;
        let records = sim.run(20, 20);
        if let Some(e) = sim.last_error() {
            return Err(format!("run (exact={exact}) faulted: {e}"));
        }
        records
            .last()
            .map(|r| r.total)
            .ok_or_else(|| format!("run (exact={exact}) produced no samples"))
    };
    let table = run(false)?;
    let exact = run(true)?;
    assert!(
        (table - exact).abs() < 1e-6 * table.abs().max(1.0),
        "table {table} vs exact {exact} kJ/mol"
    );
    Ok(())
}
