//! Cluster integration tests: a `tme-router` front door over live
//! `tme-serve` backends.
//!
//! The two properties the router exists to provide:
//!
//! 1. **No admitted request is lost** — killing a shard mid-load must
//!    not turn any in-flight or subsequent request into a client-visible
//!    transport error: the router fails over (work requests are pure,
//!    so a re-forward is safe) and every call terminates with a decoded
//!    response.
//! 2. **Deterministic convergence** — once the dead shard is ejected,
//!    its keyspace re-hashes onto exactly the shards rendezvous hashing
//!    predicts, and the survivors' keys do not move (plan caches stay
//!    warm through the failover).

use mdgrape4a_tme::router::{pick_shard, route_key, RouterConfig};
use mdgrape4a_tme::serve::{serve, BackoffPolicy, Request, Response, RetryingClient, ServeConfig};
use mdgrape4a_tme::tme::TmeParams;
use std::time::{Duration, Instant};

fn backend() -> mdgrape4a_tme::serve::ServerHandle {
    serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("start backend")
}

fn nve(seed: u64) -> Request {
    Request::NveRun {
        deadline_ms: 30_000,
        waters: 8,
        seed,
        steps: 1,
        dt: 0.001,
        r_cut: 0.55,
    }
}

#[test]
fn shard_kill_mid_load_loses_no_admitted_request() {
    let backends = [backend(), backend(), backend()];
    let router = mdgrape4a_tme::router::route(RouterConfig {
        shards: backends
            .iter()
            .map(|b| b.local_addr().to_string())
            .collect(),
        health: mdgrape4a_tme::router::HealthConfig {
            strikes: 1,
            cooldown: Duration::from_millis(200),
        },
        connect_timeout_ms: 200,
        ..RouterConfig::default()
    })
    .expect("start router");

    let call = |client: &mut RetryingClient, seed: u64| {
        let resp = client.call(&nve(seed)).expect("terminated with a response");
        assert!(
            matches!(resp, Response::NveDone { .. }),
            "request {seed} did not complete: {resp:?}"
        );
    };

    // Phase A: three concurrent tenants, all shards alive.
    let addr = router.local_addr();
    let phase = |range: std::ops::Range<u64>| {
        let mut threads = Vec::new();
        for (t, chunk) in [0u64, 1, 2].into_iter().zip([0u64, 8, 16]) {
            let start = range.start + chunk;
            let end = (start + 8).min(range.end + chunk);
            let mut client = RetryingClient::new(addr, BackoffPolicy::default(), 0xC0FFEE ^ t);
            threads.push(std::thread::spawn(move || {
                for seed in start..end {
                    call(&mut client, seed);
                }
            }));
        }
        for th in threads {
            th.join().expect("client thread");
        }
    };
    phase(0..8);

    // Kill shard 1 while the router is live, then keep loading: every
    // request must still terminate successfully (failover, not loss).
    let [b0, b1, b2] = backends;
    b1.trigger_drain();
    b1.join();
    phase(100..108);

    let stats = router.stats();
    assert_eq!(
        stats.completed, 48,
        "all 48 requests answered despite the kill"
    );
    assert!(
        stats.shards[1].state == "ejected" || stats.shards[1].state == "half_open",
        "dead shard still {}",
        stats.shards[1].state
    );
    assert!(
        stats.rerouted >= 1,
        "some of the dead shard's keyspace was rerouted"
    );
    assert_eq!(stats.protocol_errors, 0);

    // Convergence: with shard 1 ejected, fresh keys land exactly where
    // rendezvous over the survivor set says, and shard 1 sees nothing.
    let dead_forwarded = stats.shards[1].forwarded;
    let before: Vec<u64> = stats.shards.iter().map(|s| s.forwarded).collect();
    let survivors = [0usize, 2];
    let mut expected = [0u64; 3];
    let mut client = RetryingClient::new(addr, BackoffPolicy::default(), 99);
    for seed in 1_000..1_012u64 {
        let req = nve(seed);
        expected[pick_shard(route_key(&req), &survivors).expect("survivors")] += 1;
        call(&mut client, seed);
    }
    let after = router.stats();
    assert_eq!(
        after.shards[1].forwarded, dead_forwarded,
        "ejected shard got traffic"
    );
    for s in survivors {
        assert_eq!(
            after.shards[s].forwarded - before[s],
            expected[s],
            "shard {s} did not receive exactly its rendezvous share"
        );
    }

    router.join();
    b0.trigger_drain();
    b0.join();
    b2.trigger_drain();
    b2.join();
}

#[test]
fn plan_cache_affinity_spans_the_cluster() {
    // Two distinct solver configurations, each sent four times through
    // the router: rendezvous routing must plan each exactly once
    // cluster-wide (one miss per configuration, hits for every repeat),
    // on the shard the hash predicts.
    let backends = [backend(), backend(), backend()];
    let router = mdgrape4a_tme::router::route(RouterConfig {
        shards: backends
            .iter()
            .map(|b| b.local_addr().to_string())
            .collect(),
        ..RouterConfig::default()
    })
    .expect("start router");

    let compute = |grid: usize| Request::Compute {
        deadline_ms: 30_000,
        params: mdgrape4a_tme::serve::protocol::BackendParams::Tme(TmeParams {
            n: [grid; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha: 3.2,
            r_cut: 1.0,
        }),
        box_l: [4.0; 3],
        pos: vec![[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]],
        q: vec![1.0, -1.0],
    };

    let mut client = RetryingClient::new(router.local_addr(), BackoffPolicy::default(), 5);
    let mut energies = [f64::NAN; 2];
    for round in 0..4 {
        for (i, grid) in [16usize, 32].into_iter().enumerate() {
            let resp = client.call(&compute(grid)).expect("compute via router");
            let Response::Computed {
                energy, cache_hit, ..
            } = resp
            else {
                panic!("expected Computed, got {resp:?}");
            };
            assert_eq!(
                cache_hit,
                round > 0,
                "grid {grid} round {round}: cluster-wide plan reuse"
            );
            if round == 0 {
                energies[i] = energy;
            } else {
                assert_eq!(
                    energy.to_bits(),
                    energies[i].to_bits(),
                    "same shard, same plan, bit-identical energy"
                );
            }
        }
    }

    // The router sent each configuration to the one shard rendezvous
    // picked for its fingerprint.
    let all = [0usize, 1, 2];
    let stats = router.stats();
    let mut expected = [0u64; 3];
    for grid in [16usize, 32] {
        expected[pick_shard(route_key(&compute(grid)), &all).expect("shards")] += 4;
    }
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(
            stats.shards[i].forwarded, *want,
            "shard {i} forwarded count off"
        );
    }
    router.join();

    // Cluster-wide plan-cache accounting: exactly one miss per distinct
    // configuration, every repeat a hit.
    let (mut hits, mut misses, mut forwarded) = (0, 0, 0);
    for b in backends {
        b.trigger_drain();
        let s = b.join();
        hits += s.cache_hits;
        misses += s.cache_misses;
        forwarded += s.kinds.forwarded;
    }
    assert_eq!(misses, 2, "one plan build per configuration, cluster-wide");
    assert_eq!(hits, 6, "every repeat reused the shard-local plan");
    assert_eq!(forwarded, 8, "all work arrived as v4 forwarded frames");
}

/// A router with *no* healthy backend answers fast with `Rejected`
/// (typed backpressure), not a hang or a transport error — and a
/// `RetryingClient` that exhausts its attempts against that still comes
/// back with a synthetic `Rejected`, not a wire error.
#[test]
fn routerless_backends_reject_rather_than_hang() {
    // Bind-then-drop to get a port with nothing listening.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };
    let router = mdgrape4a_tme::router::route(RouterConfig {
        shards: vec![dead.to_string()],
        health: mdgrape4a_tme::router::HealthConfig {
            strikes: 1,
            cooldown: Duration::from_secs(60),
        },
        connect_timeout_ms: 100,
        ..RouterConfig::default()
    })
    .expect("start router");
    let policy = BackoffPolicy {
        base_ms: 1,
        cap_ms: 5,
        max_attempts: 3,
    };
    let mut client = RetryingClient::new(router.local_addr(), policy, 11);
    let t0 = Instant::now();
    let resp = client.call(&nve(1)).expect("typed outcome, not an error");
    assert!(
        matches!(resp, Response::Rejected { .. }),
        "expected backpressure, got {resp:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "no-backend rejection must be fast, took {:?}",
        t0.elapsed()
    );
    let stats = router.join();
    assert!(stats.no_backend_rejected >= 1);
    assert_eq!(stats.completed, 0);
}
