//! Cross-crate integration: the three Coulomb solvers (direct Ewald,
//! SPME, TME) must agree on real water systems, through the public facade
//! API, including the hardware-precision (fixed-point / f32) paths.

use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::mesh::model::relative_force_error;
use mdgrape4a_tme::mesh::SplineOps;
use mdgrape4a_tme::num::fixed::quantize_slice;
use mdgrape4a_tme::reference::ewald::{Ewald, EwaldParams};
use mdgrape4a_tme::reference::Spme;
use mdgrape4a_tme::tme::{Tme, TmeParams};

fn water(n: usize, seed: u64) -> mdgrape4a_tme::mesh::CoulombSystem {
    water_box(n, seed).coulomb_system()
}

/// Small test boxes have much finer grid spacing than the paper's
/// h ≈ 0.31 nm, so the grid cutoff must grow with 1/(α_min h) to keep the
/// slowest middle-shell Gaussian inside it (the `table1` harness runs the
/// paper's regime where g_c = 8 suffices).
fn paper_params(n_grid: usize, r_cut: f64, m: usize, levels: u32) -> TmeParams {
    TmeParams {
        n: [n_grid; 3],
        p: 6,
        levels,
        gc: 8,
        m_gaussians: m,
        alpha: EwaldParams::alpha_from_tolerance(r_cut, 1e-4),
        r_cut,
    }
}

/// The Table-1 relationship on an actual water box: TME(M=4, g_c=8) and
/// SPME errors against exact Ewald are the same order.
#[test]
fn tme_and_spme_agree_against_ewald_on_water() {
    let sys = water(343, 17);
    let box_l = sys.box_l;
    let mut params = paper_params(16, 1.0, 4, 1);
    params.gc = 16; // h ≈ 0.14 nm here — see paper_params docs
    let reference = Ewald::new(EwaldParams::reference_quality(box_l, 1e-14)).compute(&sys);
    let tme_err = {
        let got = Tme::new(params, box_l).compute(&sys);
        relative_force_error(&got.forces, &reference.forces)
    };
    let spme_err = {
        let got = Spme::new([16; 3], box_l, params.alpha, 6, 1.0).compute(&sys);
        relative_force_error(&got.forces, &reference.forces)
    };
    assert!(tme_err < 2e-3, "TME force error {tme_err:e}");
    assert!(spme_err < 2e-3, "SPME force error {spme_err:e}");
    assert!(
        tme_err < 3.0 * spme_err + 1e-5,
        "TME {tme_err:e} vs SPME {spme_err:e}"
    );
}

/// Energies agree between all three methods (water, full Coulomb sum).
#[test]
fn energies_consistent_across_methods() {
    let sys = water(216, 23);
    let box_l = sys.box_l;
    let params = paper_params(16, 0.9, 4, 1);
    let e_ref = Ewald::new(EwaldParams::reference_quality(box_l, 1e-14))
        .compute(&sys)
        .energy;
    let e_spme = Spme::new([16; 3], box_l, params.alpha, 6, 0.9)
        .compute(&sys)
        .energy;
    let e_tme = Tme::new(params, box_l).compute(&sys).energy;
    assert!(
        ((e_spme - e_ref) / e_ref).abs() < 2e-3,
        "SPME {e_spme} vs {e_ref}"
    );
    assert!(
        ((e_tme - e_ref) / e_ref).abs() < 2e-3,
        "TME {e_tme} vs {e_ref}"
    );
}

/// The hardware's fixed-point grid path: quantising grid charges and
/// potentials through the 32-bit formats must not destroy the accuracy
/// (this is why MDGRAPE-4A can run the whole long-range part in fixed
/// point).
#[test]
fn fixed_point_grid_path_preserves_accuracy() {
    let sys = water(216, 29);
    let box_l = sys.box_l;
    let params = paper_params(16, 0.9, 4, 1);
    let tme = Tme::new(params, box_l);
    let ops = SplineOps::new(6, [16; 3], box_l);

    // Float path.
    let (lr_float, _) = tme.long_range(&sys);

    // Hardware path: quantise the assigned charges (GM accumulate format)
    // and the resulting potentials (GCU output) at 24 fraction bits.
    let mut q_grid = ops.assign(&sys.pos, &sys.q);
    quantize_slice::<24>(q_grid.as_mut_slice());
    let (mut phi, _) = tme.long_range_grid_potential(&q_grid);
    quantize_slice::<24>(phi.as_mut_slice());
    let interp = ops.interpolate(&phi, &sys.pos, &sys.q);

    let err = relative_force_error(&interp.force, &lr_float.forces);
    assert!(err < 1e-4, "fixed-point mesh path diverged: {err:e}");
}

/// The FPGA's single-precision top level barely moves the result.
#[test]
fn single_precision_top_level_is_harmless() {
    let sys = water(216, 31);
    let box_l = sys.box_l;
    let params = paper_params(16, 0.9, 4, 1);
    let full = Tme::new(params, box_l);
    let mut narrow = Tme::new(params, box_l);
    narrow.set_top_single_precision(true);
    let (a, _) = full.long_range(&sys);
    let (b, _) = narrow.long_range(&sys);
    let err = relative_force_error(&b.forces, &a.forces);
    assert!(err < 1e-5, "f32 top level changed forces by {err:e}");
}

/// L = 2 through the facade on a 32³ grid stays consistent with L = 1.
#[test]
fn deeper_hierarchy_consistent() {
    let sys = water(1000, 37);
    let box_l = sys.box_l;
    let p1 = paper_params(32, 1.0, 4, 1);
    let p2 = paper_params(32, 1.0, 4, 2);
    let f1 = Tme::new(p1, box_l).compute(&sys);
    let f2 = Tme::new(p2, box_l).compute(&sys);
    let diff = relative_force_error(&f2.forces, &f1.forces);
    assert!(diff < 5e-3, "L=1 vs L=2 disagree: {diff:e}");
}

/// Anisotropic (non-cubic) boxes: per-axis grid spacings flow through
/// kernels, influence functions and interpolation consistently.
#[test]
fn anisotropic_box_consistent_with_spme() {
    use mdgrape4a_tme::md::water::water_box_in;
    let box_l = [3.2, 2.4, 4.0];
    let sys = {
        let s = water_box_in(216, box_l, 19);
        s.coulomb_system()
    };
    let r_cut = 1.0;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let n = [16usize, 16, 32];
    let params = TmeParams {
        n,
        p: 6,
        levels: 1,
        gc: 16,
        m_gaussians: 4,
        alpha,
        r_cut,
    };
    let tme_mesh_out = Tme::new(params, box_l).long_range(&sys).0;
    let spme_mesh = Spme::new(n, box_l, alpha, 6, r_cut).reciprocal(&sys);
    let err = relative_force_error(&tme_mesh_out.forces, &spme_mesh.forces);
    assert!(err < 2e-2, "anisotropic TME vs SPME: {err:e}");
    assert!(
        (tme_mesh_out.energy - spme_mesh.energy).abs() < 1e-3 * spme_mesh.energy.abs(),
        "{} vs {}",
        tme_mesh_out.energy,
        spme_mesh.energy
    );
}

/// Total charge is conserved through the whole grid hierarchy.
#[test]
fn charge_conserved_through_hierarchy() {
    use mdgrape4a_tme::tme::levels::LevelTransfer;
    let sys = water(125, 41);
    let ops = SplineOps::new(6, [16; 3], sys.box_l);
    let q1 = ops.assign(&sys.pos, &sys.q);
    let transfer = LevelTransfer::new(6);
    let q2 = transfer.restrict(&q1);
    let q3 = transfer.restrict(&q2);
    assert!((q1.sum() - sys.total_charge()).abs() < 1e-9);
    assert!((q2.sum() - sys.total_charge()).abs() < 1e-9);
    assert!((q3.sum() - sys.total_charge()).abs() < 1e-9);
}
