//! Property and chaos tests for the serve overload pipeline
//! (DESIGN.md §16): the EDF queue's expiry contract, the admission-cost
//! ledger, and shed-before-decode under hostile connection floods.
//!
//! Three contracts:
//!
//! 1. **Expiry ordering** — over seeded random push/pop/sweep schedules,
//!    [`Popped::Ready`] never hands out an entry whose deadline had
//!    already passed when the pop began, and everything a sweep removes
//!    was genuinely expired.
//! 2. **Cost conservation** — after a mixed workload (tight deadlines,
//!    rejections, sheds) drains, the admission ledger balances:
//!    `outstanding == 0`, `admitted == released`, and every decoded work
//!    request was answered.
//! 3. **Shed-before-decode** — a flood of half-open, garbage and
//!    slowloris connections cannot starve legitimate clients or leak
//!    admitted work: the server stays up, keeps answering, and still
//!    drains losslessly.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use mdgrape4a_tme::md::backend::BackendParams;
use mdgrape4a_tme::num::rng::SplitMix64;
use mdgrape4a_tme::reference::ewald::EwaldParams;
use mdgrape4a_tme::serve::queue::{Bounded, Popped};
use mdgrape4a_tme::serve::{serve, Client, Request, Response, ServeConfig, WireError};
use mdgrape4a_tme::tme::TmeParams;

fn dipole_request(deadline_ms: u64) -> Request {
    Request::Compute {
        deadline_ms,
        params: BackendParams::Tme(TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha: EwaldParams::alpha_from_tolerance(1.0, 1e-4),
            r_cut: 1.0,
        }),
        box_l: [4.0; 3],
        pos: vec![[1.0, 1.0, 1.0], [2.5, 1.0, 1.0]],
        q: vec![1.0, -1.0],
    }
}

// ---------------------------------------------------------------- 1 ---

/// Shared oracle for test 1: check one popped entry against the recorded
/// deadlines, given the instant the pop began.
fn serve_one(
    case: u64,
    deadlines: &HashMap<u64, Option<Instant>>,
    popped: Popped<u64>,
    t_before: Instant,
) {
    match popped {
        Popped::Ready(id) => {
            let dl = deadlines[&id];
            // The entry may expire *during* the pop (benign race); what
            // must never happen is serving one that was dead before the
            // pop began.
            assert!(
                !matches!(dl, Some(t) if t <= t_before),
                "case {case}: entry {id} was expired before pop, returned Ready"
            );
        }
        Popped::Expired(id) => {
            let dl = deadlines[&id];
            let now = Instant::now();
            assert!(
                matches!(dl, Some(t) if t <= now),
                "case {case}: entry {id} tagged Expired with a live deadline"
            );
        }
    }
}

/// Random schedules of pushes (expired / live / deadline-free), pops and
/// sweeps: a `Ready` pop must never return an entry that was already
/// expired when the pop started, and a sweep must only remove entries
/// expired at its cutoff.
#[test]
fn edf_pop_never_serves_an_expired_entry() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0EDF_5EED ^ (case << 8) ^ case);
        let capacity = 1 + rng.gen_index(15);
        let q: Bounded<u64> = Bounded::new(capacity);
        let mut deadlines: HashMap<u64, Option<Instant>> = HashMap::new();
        let mut next_id = 0u64;
        for _ in 0..200 {
            match rng.gen_index(5) {
                // Push (twice as likely as each drain op).
                0 | 1 => {
                    let expires_at = match rng.gen_index(3) {
                        0 => None,
                        // Already expired (or expiring immediately).
                        1 => Some(Instant::now()),
                        // Live for 0..2 ms — some will expire mid-test.
                        _ => {
                            Some(Instant::now() + Duration::from_micros(rng.gen_index(2000) as u64))
                        }
                    };
                    let id = next_id;
                    if q.try_push(id, expires_at).is_ok() {
                        deadlines.insert(id, expires_at);
                        next_id += 1;
                    }
                }
                2 | 3 => {
                    if !q.is_empty() {
                        let t_before = Instant::now();
                        let popped = q.pop().expect("non-empty queue must pop");
                        serve_one(case, &deadlines, popped, t_before);
                    }
                }
                _ => {
                    let now = Instant::now();
                    let mut out = Vec::new();
                    q.sweep_expired(now, &mut out);
                    for id in out {
                        let dl = deadlines[&id];
                        assert!(
                            matches!(dl, Some(t) if t <= now),
                            "case {case}: sweep removed live entry {id}"
                        );
                    }
                }
            }
        }
        // Drain what is left under the same contract.
        q.close();
        loop {
            let t_before = Instant::now();
            match q.pop() {
                Some(popped) => serve_one(case, &deadlines, popped, t_before),
                None => break,
            }
        }
    }
}

// ---------------------------------------------------------------- 2 ---

/// A mixed workload — tight deadlines forcing expiries, a starved cost
/// budget forcing rejections, reconnect-on-shed clients — must leave the
/// admission ledger balanced after drain, with every decoded work
/// request answered.
#[test]
fn admission_cost_ledger_balances_after_drain() {
    let handle = serve(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        // Roughly two dipole computes' worth: admission itself becomes a
        // contended resource, so the rollback path gets exercised too.
        cost_budget: 48,
        ..ServeConfig::default()
    })
    .expect("server must start");
    let addr = handle.local_addr();

    std::thread::scope(|scope| {
        for c in 0..6u64 {
            scope.spawn(move || {
                let mut client: Option<Client> = None;
                for i in 0..30u64 {
                    let cl = match &mut client {
                        Some(cl) => cl,
                        None => match Client::connect(addr) {
                            Ok(cl) => client.insert(cl),
                            Err(_) => continue,
                        },
                    };
                    // Every third request carries a 1 ms deadline: queue
                    // wait alone can kill it.
                    let deadline_ms = u64::from((c + i) % 3 == 0);
                    match cl.call(&dipole_request(deadline_ms)) {
                        Ok(
                            Response::Computed { .. }
                            | Response::Rejected { .. }
                            | Response::Expired { .. },
                        ) => {}
                        Ok(other) => panic!("unexpected response {other:?}"),
                        // Shed (or dropped) — reconnect and move on.
                        Err(WireError::Shed | WireError::Io { .. }) => client = None,
                        Err(e) => panic!("protocol error {e}"),
                    }
                }
            });
        }
    });

    handle.trigger_drain();
    let stats = handle.join();
    assert_eq!(
        stats.outstanding_cost, 0,
        "cost must drain to zero: {stats}"
    );
    assert_eq!(
        stats.admitted_cost, stats.released_cost,
        "every admitted unit must be released exactly once: {stats}"
    );
    assert!(stats.admitted_cost > 0, "some work must have been admitted");
    let answered = stats.completed + stats.rejected + stats.expired + stats.server_errors;
    let work = stats.kinds.compute + stats.kinds.nve_run + stats.kinds.estimate;
    assert_eq!(answered, work, "drain lost a decoded request: {stats}");
    assert_eq!(stats.protocol_errors, 0, "well-formed clients only");
}

// ---------------------------------------------------------------- 3 ---

/// Hostile flood: half-open connections that never send a byte,
/// connections spraying garbage frames, and slowloris writers that stall
/// mid-frame. None of it may crash the server, starve legitimate
/// clients, or break the drain invariants.
#[test]
fn shed_pipeline_survives_garbage_and_half_open_floods() {
    let handle = serve(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        ..ServeConfig::default()
    })
    .expect("server must start");
    let addr = handle.local_addr();
    let stop = AtomicBool::new(false);
    let mut legit_completed = 0u64;

    std::thread::scope(|scope| {
        // Half-open flood: connect, hold the socket silently, drop.
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let conn = std::net::TcpStream::connect(addr);
                    std::thread::sleep(Duration::from_millis(20));
                    drop(conn);
                }
            });
        }
        // Garbage flood: well-framed junk payloads (guaranteed protocol
        // errors) and oversized length prefixes.
        scope.spawn(|| {
            let mut toggle = false;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                    toggle = !toggle;
                    let junk: &[u8] = if toggle {
                        // 4-byte frame of 0xFF: version check fails.
                        &[4, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF]
                    } else {
                        // Length prefix far beyond MAX_FRAME_BYTES.
                        &[0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3]
                    };
                    let _ = s.write_all(junk);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        });
        // Slowloris: open a frame, write two bytes, stall past the
        // server's read timeout.
        scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                    let _ = s.write_all(&[16, 0]);
                    std::thread::sleep(Duration::from_millis(150));
                }
            }
        });

        // Legitimate clients, reconnecting through sheds.
        let mut legit = Vec::new();
        for _ in 0..3 {
            legit.push(scope.spawn(|| {
                let mut completed = 0u64;
                let mut client: Option<Client> = None;
                for _ in 0..25 {
                    let cl = match &mut client {
                        Some(cl) => cl,
                        None => match Client::connect(addr) {
                            Ok(cl) => client.insert(cl),
                            Err(_) => continue,
                        },
                    };
                    match cl.call(&dipole_request(0)) {
                        Ok(Response::Computed { .. }) => completed += 1,
                        Ok(Response::Rejected { retry_after_ms, .. }) => {
                            assert!(retry_after_ms > 0, "rejection must carry a hint");
                            std::thread::sleep(Duration::from_millis(retry_after_ms.min(20)));
                        }
                        Ok(other) => panic!("unexpected response {other:?}"),
                        Err(WireError::Shed | WireError::Io { .. }) => client = None,
                        Err(e) => panic!("legit client hit protocol error {e}"),
                    }
                }
                completed
            }));
        }
        for j in legit {
            legit_completed += j.join().expect("legit client must not panic");
        }
        stop.store(true, Ordering::Relaxed);
    });

    handle.trigger_drain();
    let stats = handle.join();
    assert!(
        legit_completed > 0,
        "the flood starved every legitimate client"
    );
    assert!(
        stats.protocol_errors > 0,
        "the garbage flood never reached the framing layer — test is vacuous"
    );
    let answered = stats.completed + stats.rejected + stats.expired + stats.server_errors;
    let work = stats.kinds.compute + stats.kinds.nve_run + stats.kinds.estimate;
    assert_eq!(
        answered, work,
        "an admitted request went unanswered under flood: {stats}"
    );
    assert_eq!(stats.outstanding_cost, 0, "cost leak under flood: {stats}");
    assert_eq!(stats.admitted_cost, stats.released_cost);
    assert_eq!(
        stats.completed, legit_completed,
        "only legit work completes"
    );
}
