//! Facade crate for the MDGRAPE-4A / TME reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single package:
//!
//! * [`num`] — special functions, quadrature, FFTs, fixed point
//! * [`mesh`] — periodic grids, B-splines, charge assignment / interpolation
//! * [`tme`] — the tensor-structured multilevel Ewald method itself
//! * `reference` — Ewald summation, SPME and B-spline MSM baselines
//! * [`md`] — the molecular-dynamics substrate (TIP3P water, NVE, SETTLE)
//! * [`machine`] — the discrete-event MDGRAPE-4A machine simulator
//! * [`serve`] — the multi-tenant simulation service (wire protocol,
//!   plan cache, worker pool with backpressure)
//! * [`router`] — the cluster front door (rendezvous-hashed shard
//!   routing, per-tenant quotas/fair share, health ejection)

pub use mdgrape_sim as machine;
pub use tme_core as tme;
pub use tme_md as md;
pub use tme_mesh as mesh;
pub use tme_num as num;
pub use tme_reference as reference;
pub use tme_router as router;
pub use tme_serve as serve;
