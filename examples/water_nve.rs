//! NVE water dynamics with TME electrostatics: velocity-Verlet + SETTLE,
//! reporting energy conservation — a miniature of the paper's Fig. 4 run.
//!
//! Run: `cargo run --example water_nve --release`

use mdgrape4a_tme::md::backend::TmeBackend;
use mdgrape4a_tme::md::nve::{energy_drift, NveSim};
use mdgrape4a_tme::md::water::{relax, thermalize, water_box};
use mdgrape4a_tme::reference::ewald::EwaldParams;
use mdgrape4a_tme::tme::TmeParams;

fn main() {
    let mut system = water_box(216, 7);
    relax(&mut system, 300, 0.9); // remove lattice-construction overlaps
    thermalize(&mut system, 300.0, 8);
    let box_l = system.box_l;
    println!(
        "NVE: {} rigid TIP3P waters, L = {:.3} nm, velocity-Verlet + SETTLE, dt = 1 fs",
        system.waters.len(),
        box_l[0]
    );

    // Box is ~1.9 nm, so keep the cutoff below L/2.
    let r_cut = 0.9;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let tme = TmeBackend::new(
        TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 3,
            alpha,
            r_cut,
        },
        box_l,
    )
    .expect("valid TME configuration");

    let mut sim = NveSim::new(system, &tme, 0.001, r_cut);
    let records = sim.run(500, 50);
    println!("\n  t (ps)   E_total (kJ/mol)   E_kin      T (K)");
    for r in &records {
        println!(
            "  {:6.3}   {:14.3}   {:8.2}   {:6.1}",
            r.time, r.total, r.kinetic, r.temperature
        );
    }
    let drift = energy_drift(&records);
    let span = records.last().unwrap().time;
    println!("\nenergy drift over {span:.2} ps: {drift:+.4} kJ/mol/ps");
    let per_kt = drift.abs() * span / (records[0].kinetic.abs().max(1.0));
    println!("relative to kinetic energy: {per_kt:.2e} (should be ≪ 1)");
    assert!(per_kt < 0.05, "energy not conserved");
    println!("OK — no systematic drift (the Fig. 4 property)");
}
