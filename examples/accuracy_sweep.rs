//! Sweep the TME accuracy knobs (M, g_c, L, spline order p) on one water
//! box and print the error landscape — a compact interactive version of
//! the Table 1 study.
//!
//! Run: `cargo run --example accuracy_sweep --release`

use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::mesh::model::relative_force_error;
use mdgrape4a_tme::reference::ewald::{Ewald, EwaldParams};
use mdgrape4a_tme::tme::{Tme, TmeParams};

fn main() {
    let system = water_box(512, 9).coulomb_system();
    let box_l = system.box_l;
    let r_cut = 1.0;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    println!(
        "{} atoms, L = {:.3} nm, rc = {r_cut} nm, α = {alpha:.4}",
        system.len(),
        box_l[0]
    );

    let reference = Ewald::new(EwaldParams::reference_quality(box_l, 1e-14)).compute(&system);

    println!("\n-- M sweep (g_c = 8, L = 1, p = 6) --");
    for m in 1..=6 {
        let t = Tme::new(
            TmeParams {
                n: [16; 3],
                p: 6,
                levels: 1,
                gc: 8,
                m_gaussians: m,
                alpha,
                r_cut,
            },
            box_l,
        );
        let err = relative_force_error(&t.compute(&system).forces, &reference.forces);
        println!("M = {m}: {err:.3e}");
    }

    println!("\n-- g_c sweep (M = 4, L = 1, p = 6) --");
    for gc in [2usize, 4, 6, 8, 12] {
        let t = Tme::new(
            TmeParams {
                n: [16; 3],
                p: 6,
                levels: 1,
                gc,
                m_gaussians: 4,
                alpha,
                r_cut,
            },
            box_l,
        );
        let err = relative_force_error(&t.compute(&system).forces, &reference.forces);
        println!("g_c = {gc:2}: {err:.3e}");
    }

    println!("\n-- spline order sweep (M = 4, g_c = 8, L = 1) --");
    for p in [4usize, 6, 8] {
        let t = Tme::new(
            TmeParams {
                n: [16; 3],
                p,
                levels: 1,
                gc: 8,
                m_gaussians: 4,
                alpha,
                r_cut,
            },
            box_l,
        );
        let err = relative_force_error(&t.compute(&system).forces, &reference.forces);
        println!("p = {p}: {err:.3e}");
    }

    println!("\n(the hardware fixes p = 6, supports g_c ∈ {{8, 12}} and uses M = 4)");
}
