//! Execute the TME grid pipeline with the machine's actual data
//! decomposition — 512 node blocks, sleeve/halo exchanges, per-node
//! convolutions — and check it against the single-address-space solver.
//!
//! This is the dataflow the MDGRAPE-4A hardware runs (LRU sleeves, GCU
//! axis packets); the machine simulator times it, this example proves it
//! computes the right thing.
//!
//! Run: `cargo run --example distributed_dataflow --release`

use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::mesh::SplineOps;
use mdgrape4a_tme::tme::convolve::convolve_separable;
use mdgrape4a_tme::tme::distributed::{
    assign_distributed, convolve_separable_distributed, long_range_distributed,
    restrict_distributed, Decomposition,
};
use mdgrape4a_tme::tme::kernel::TensorKernel;
use mdgrape4a_tme::tme::levels::LevelTransfer;
use mdgrape4a_tme::tme::toplevel::TopLevel;
use mdgrape4a_tme::tme::GaussianFit;
use mdgrape4a_tme::tme::{Tme, TmeParams};

fn max_diff(a: &mdgrape4a_tme::mesh::Grid3, b: &mdgrape4a_tme::mesh::Grid3) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    // The machine's production decomposition: 8×8×8 nodes over the 32³
    // grid (4³ = one GCU block per node).
    let dec = Decomposition::new([8, 8, 8], [32, 32, 32]);
    println!(
        "decomposition: {}³ nodes × {:?} local grid = {:?} global",
        dec.nodes[0],
        dec.local(),
        dec.grid
    );

    let sys = water_box(1000, 21).coulomb_system();
    let box_l = sys.box_l;
    let ops = SplineOps::new(6, dec.grid, box_l);

    // 1. Charge assignment: per-node atoms + sleeve accumulation.
    let blocks = assign_distributed(&dec, &ops, &sys.pos, &sys.q);
    let global_q = ops.assign(&sys.pos, &sys.q);
    let d_assign = max_diff(&dec.gather(&blocks), &global_q);
    println!("charge assignment   max |distributed − global| = {d_assign:.2e}");

    // 2. Level-1 separable convolution with halo packets (the GCU phase).
    let fit = GaussianFit::new(2.2936, 4); // α(r_c = 1.2 nm)
    let kernel = TensorKernel::new(&fit, ops.spacing(), 6, 8);
    let conv_blocks = convolve_separable_distributed(&dec, &blocks, &kernel, 1.0);
    let (global_conv, stats) = convolve_separable(&global_q, &kernel, 1.0);
    let d_conv = max_diff(&dec.gather(&conv_blocks), &global_conv);
    println!(
        "level-1 convolution max |distributed − global| = {d_conv:.2e}  ({} madds, {} passes)",
        stats.madds, stats.passes
    );

    // 3. Restriction to the 16³ top-level grid with p/2-deep halos.
    let (coarse_dec, coarse_blocks) = restrict_distributed(&dec, &blocks, 6);
    let global_coarse = LevelTransfer::new(6).restrict(&global_q);
    let d_restrict = max_diff(&coarse_dec.gather(&coarse_blocks), &global_coarse);
    println!(
        "restriction → {:?}  max |distributed − global| = {d_restrict:.2e}",
        coarse_dec.grid
    );

    assert!(d_assign < 1e-11 && d_conv < 1e-11 && d_restrict < 1e-11);

    // 4. The complete six-step pipeline (CA → conv → restrict → TMENW-style
    //    gather+FFT → prolong → accumulate) against the global TME solver.
    let alpha = 2.2936;
    let params = TmeParams {
        n: dec.grid,
        p: 6,
        levels: 1,
        gc: 8,
        m_gaussians: 4,
        alpha,
        r_cut: 1.2,
    };
    let tme = Tme::new(params, box_l);
    let top = TopLevel::new([16; 3], box_l, alpha / 2.0, 6);
    let dist_phi = long_range_distributed(&dec, &ops, &kernel, &top, 6, &sys.pos, &sys.q);
    let (global_phi, _) = tme.long_range_grid_potential(&global_q);
    let d_pipeline = max_diff(&dist_phi, &global_phi);
    println!("full pipeline       max |distributed − global| = {d_pipeline:.2e}");
    assert!(d_pipeline < 1e-10);
    println!("OK — the decomposed dataflow reproduces the global solver exactly");
}
