//! Serving-layer round trip: start an in-process `tme-serve` server,
//! talk to it over the wire protocol, and drain it gracefully.
//!
//! Everything here works identically against a standalone server
//! (`cargo run --release -p tme-serve --bin serve -- --addr 127.0.0.1:7878`);
//! the in-process handle is only used to get an ephemeral port and a
//! clean shutdown inside one example binary.
//!
//! Run: `cargo run --example serve_client --release`

use mdgrape4a_tme::md::backend::{BackendKind, BackendParams, SpmeParams};
use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::reference::ewald::EwaldParams;
use mdgrape4a_tme::serve::{serve, Client, Request, Response, ServeConfig};
use mdgrape4a_tme::tme::TmeParams;

fn main() {
    // 1. Server: two workers, a bounded queue of eight requests, plan
    //    cache for eight distinct configurations.
    let handle = serve(ServeConfig::default()).expect("server start");
    let addr = handle.local_addr();
    println!("server listening on {addr}");

    let mut client = Client::connect(addr).expect("connect");

    // 2. A Compute request: the same water box + TME configuration as the
    //    quickstart, shipped over the wire.
    let system = water_box(125, 42).coulomb_system();
    let r_cut = 0.75;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let request = Request::Compute {
        deadline_ms: 0, // no deadline
        params: BackendParams::Tme(TmeParams {
            n: [16; 3],
            p: 6,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            alpha,
            r_cut,
        }),
        box_l: system.box_l,
        pos: system.pos.clone(),
        q: system.q.clone(),
    };

    // First call plans the solver; the identical second call must be
    // answered from the plan cache with bitwise-identical energy.
    for round in 1..=2 {
        match client.call(&request).expect("compute call") {
            Response::Computed {
                energy,
                cache_hit,
                forces,
                ..
            } => println!(
                "round {round}: energy {energy:.6} e²/nm over {} atoms (plan cache {})",
                forces.len(),
                if cache_hit { "HIT" } else { "miss" },
            ),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    // 3. A second tenant on the same server picks a different backend per
    //    plan: the identical system through B-spline SPME. The plan cache
    //    keys on (backend kind, params, box), so this is a fresh entry.
    let spme_request = Request::Compute {
        deadline_ms: 0,
        params: BackendParams::Spme(SpmeParams {
            n: [16; 3],
            p: 6,
            alpha,
            r_cut,
        }),
        box_l: system.box_l,
        pos: system.pos.clone(),
        q: system.q.clone(),
    };
    if let Response::Computed { energy, .. } = client.call(&spme_request).expect("spme compute") {
        println!("SPME tenant: energy {energy:.6} e²/nm");
    }

    // 4. A machine-schedule estimate on the same connection.
    let estimate = Request::Estimate {
        deadline_ms: 2_000,
        spec: mdgrape4a_tme::serve::protocol::EstimateSpec {
            backend: BackendKind::Tme,
            n_atoms: 80_540,
            grid: 32,
            levels: 1,
            gc: 8,
            m_gaussians: 4,
            r_cut: 1.2,
            box_l: [9.7, 8.3, 10.6],
            steps: 50,
        },
    };
    if let Response::Estimated {
        mean_us, report, ..
    } = client.call(&estimate).expect("estimate")
    {
        println!("machine estimate: {mean_us:.1} µs/step ({report})");
    }

    // 5. Observability snapshot, then a graceful drain.
    if let Response::Stats { text, .. } = client.call(&Request::Stats).expect("stats") {
        println!("--- server stats ---\n{text}");
    }
    handle.trigger_drain();
    let final_stats = handle.join();
    assert_eq!(final_stats.cache_hits, 1, "second compute should have hit");
    println!("drained; {} requests served. OK", final_stats.completed);
}
