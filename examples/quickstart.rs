//! Quickstart: compute Coulomb forces on a small water box with the TME
//! and check them against the exact Ewald summation.
//!
//! Run: `cargo run --example quickstart --release`

use mdgrape4a_tme::md::water::water_box;
use mdgrape4a_tme::mesh::model::relative_force_error;
use mdgrape4a_tme::reference::ewald::{Ewald, EwaldParams};
use mdgrape4a_tme::tme::{Tme, TmeParams};

fn main() {
    // 1. A 343-molecule TIP3P water box (1,029 atoms) at standard density.
    let system = water_box(343, 42).coulomb_system();
    println!(
        "system: {} atoms in a {:.3} nm box",
        system.len(),
        system.box_l[0]
    );

    // 2. TME parameters: α from erfc(α r_c) = 1e-4 (the paper's choice),
    //    one middle level, g_c = 8, M = 4 Gaussians — the MDGRAPE-4A
    //    production configuration scaled to this box.
    let r_cut = 1.0;
    let alpha = EwaldParams::alpha_from_tolerance(r_cut, 1e-4);
    let params = TmeParams {
        n: [16; 3],
        p: 6,
        levels: 1,
        gc: 8,
        m_gaussians: 4,
        alpha,
        r_cut,
    };
    let tme = Tme::new(params, system.box_l);

    // 3. Full Coulomb interaction: short-range pairs + multilevel mesh +
    //    self term (reduced units: energies in e²/nm).
    let result = tme.compute(&system);
    println!("TME Coulomb energy: {:.6} e²/nm", result.energy);

    // 4. Reference: direct Ewald summation at 1e-15 theoretical accuracy.
    let reference = Ewald::new(EwaldParams::reference_quality(system.box_l, 1e-15));
    let exact = reference.compute(&system);
    println!("Ewald reference:    {:.6} e²/nm", exact.energy);

    let err = relative_force_error(&result.forces, &exact.forces);
    println!("relative force error: {err:.3e}  (paper Table 1 regime: ~1e-4..1e-3)");
    assert!(err < 5e-3, "TME drifted from the Ewald reference");
    println!("OK");
}
