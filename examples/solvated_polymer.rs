//! A charged flexible polymer ("protein surrogate") solvated in TIP3P
//! water — the inhomogeneous workload class of the paper's production
//! system (a 480-residue protein + ions + water, §V.A). Demonstrates:
//!
//! * the solvation workflow (insert chain, carve overlapping waters,
//!   relax contacts),
//! * TME vs SPME agreement on an inhomogeneous charge distribution,
//! * short NVE dynamics with bonded + constrained + mesh forces together.
//!
//! Run: `cargo run --example solvated_polymer --release`

use mdgrape4a_tme::md::backend::TmeBackend;
use mdgrape4a_tme::md::nve::{energy_drift, NveSim};
use mdgrape4a_tme::md::solute::{solvate_chain, ChainParams};
use mdgrape4a_tme::md::water::{thermalize, water_box};
use mdgrape4a_tme::mesh::model::relative_force_error;
use mdgrape4a_tme::reference::Spme;
use mdgrape4a_tme::tme::{alpha_from_rtol, TmeParams};

fn main() {
    // Solvent + solute: 343 waters, a 16-bead ±0.5 e chain through the
    // box centre, overlapping waters carved out, contacts relaxed.
    let mut sys = water_box(343, 3);
    let centre = [sys.box_l[0] * 0.5, sys.box_l[1] * 0.5, sys.box_l[2] * 0.15];
    let chain = solvate_chain(
        &mut sys,
        &ChainParams {
            beads: 16,
            ..Default::default()
        },
        centre,
        150,
    );
    println!(
        "solvated polymer: {} atoms ({} waters kept, {} beads), L = {:.3} nm",
        sys.len(),
        sys.waters.len(),
        chain.len(),
        sys.box_l[0]
    );

    let r_cut = 1.0;
    let alpha = alpha_from_rtol(r_cut, 1e-4);
    let box_l = sys.box_l;
    // h ≈ 0.14 nm here (well below the paper's 0.31), so the slowest
    // shell Gaussian needs a larger grid cutoff than the hardware's 8 —
    // see `tme::errors::auto_params`, which picks exactly this.
    let auto = mdgrape4a_tme::tme::errors::auto_params(box_l, [16; 3], r_cut, 6, 1e-4);
    println!(
        "auto-tuned TME: M = {}, g_c = {} (h = {:.3} nm)",
        auto.m_gaussians,
        auto.gc,
        box_l[0] / 16.0
    );
    let tme =
        TmeBackend::new(TmeParams { levels: 1, ..auto }, box_l).expect("valid TME configuration");
    let spme = Spme::new([16; 3], box_l, alpha, 6, r_cut);

    // Static check: the two meshes agree on the inhomogeneous system.
    let coul = sys.coulomb_system();
    let (tme_mesh, stats) = tme.tme().long_range(&coul);
    let spme_mesh = spme.reciprocal(&coul);
    let err = relative_force_error(&tme_mesh.forces, &spme_mesh.forces);
    println!(
        "mesh energy: TME {:.5} vs SPME {:.5} e²/nm; force difference {err:.3e}",
        tme_mesh.energy, spme_mesh.energy
    );
    assert!(
        err < 1e-2,
        "TME and SPME disagree on the inhomogeneous system"
    );
    println!(
        "TME grid work: {} multiply-adds in {} separable passes",
        stats.convolution.madds, stats.convolution.passes
    );

    // Dynamics: bonded chain + SETTLE waters + TME mesh, 0.3 ps NVE.
    thermalize(&mut sys, 300.0, 5);
    let mut sim = NveSim::new(sys, &tme, 0.0005, r_cut);
    let records = sim.run(600, 100);
    println!("\n  t (ps)   E_total      E_bonded   T (K)");
    for r in &records {
        println!(
            "  {:6.3}   {:10.2}   {:8.2}   {:6.1}",
            r.time, r.total, r.bonded, r.temperature
        );
    }
    let drift = energy_drift(&records);
    println!(
        "\nenergy drift: {drift:+.3} kJ/mol/ps (kinetic scale {:.0})",
        records[0].kinetic
    );
    assert!(drift.abs() * 0.3 < 0.05 * records[0].kinetic.abs().max(1.0));
    println!("OK — flexible solute + rigid solvent + multilevel mesh all conserve");
}
