//! Drive the MDGRAPE-4A machine simulator: one MD step of the paper's
//! production workload, rendered as a Fig. 9-style time chart, plus the
//! long-range breakdown and the §V.C overlap numbers.
//!
//! Run: `cargo run --example machine_timechart`

use mdgrape4a_tme::machine::report::OverlapReport;
use mdgrape4a_tme::machine::timechart::{render, render_long_range};
use mdgrape4a_tme::machine::{simulate_step, MachineConfig, StepWorkload};

fn main() {
    let cfg = MachineConfig::mdgrape4a();
    let workload = StepWorkload::paper_fig9();
    println!(
        "simulating one MD step: {} atoms on {} SoCs ({}³ torus), {}³ grid, L={}, g_c={}, M={}",
        workload.n_atoms,
        cfg.node_count(),
        cfg.torus[0],
        workload.grid,
        workload.levels,
        workload.gc,
        workload.m_gaussians
    );

    let report = simulate_step(&cfg, &workload);
    println!("\n{}", render(&report, 100));
    print!("{}", render_long_range(&report));

    let overlap = OverlapReport::compute(&cfg, &workload);
    println!(
        "\nstep: {:.1} µs with long range, {:.1} µs without → +{:.1} µs ({:.1}%)",
        overlap.with_long_range.total_us,
        overlap.without_long_range.total_us,
        overlap.overhead_us(),
        overlap.overhead_percent()
    );
    println!("paper: 206 µs / 196 µs → +10 µs (5%)");
}
